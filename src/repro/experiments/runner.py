"""Experiment runners: sweep + aggregate logic for every figure.

Each ``run_*`` function regenerates the data series behind one figure of
the paper's evaluation and returns plain Python structures (lists of
rows) that the benches print and assert on.  Durations and repetition
counts are parameters so tests can run scaled-down versions quickly.

Execution model
---------------

Every runner decomposes its sweep into independent
:class:`~repro.experiments.parallel.SweepTask` records — one per
simulation — and executes them through
:func:`~repro.experiments.parallel.run_tasks`.  Task seeds come from
:func:`~repro.experiments.parallel.derive_seed` over the task's grid
coordinates, so results are a pure function of the task grid: serial
(``jobs=1``, the default), multi-process (``jobs=N`` or ``REPRO_JOBS=N``)
and cache-replayed runs are bit-identical
(``tests/test_parallel_equivalence.py`` enforces this).

Two seeding conventions, chosen per runner and kept deliberately:

* Sweeps over an x-axis grid derive one seed per ``(x, mac, rep)`` cell.
* Paired comparisons (office floor variants, the multi-ET/rival-ET
  ablations) share one channel seed across the compared variants on each
  topology, mirroring the paper's paired measurement and keeping the
  comparisons low-variance.

Observability: because every runner goes through ``run_tasks``, each
sweep records ``sweep``-category trace events (``REPRO_TRACE_SWEEP=1``)
and — when a manifest sink is active (``REPRO_MANIFEST_DIR`` or
:func:`repro.obs.manifest.manifest_sink`) — writes a schema-validated
run manifest next to its results.  See ``docs/observability.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analytical.bianchi import BianchiSlotModel
from repro.analytical.ht_model import HtGoodputModel
from repro.experiments.metrics import average_link_goodput_mbps
from repro.experiments.parallel import ResultCache, SweepTask, derive_seed, run_tasks
from repro.experiments.params import ScenarioParams, ht_params, ns2_params
from repro.experiments.topologies import (
    enterprise_floor_topology,
    exposed_terminal_topology,
    fig9_configurations,
    hidden_terminal_topology,
    ht_adaptation_topology,
    model_validation_topology,
    multi_et_topology,
    office_floor_topology,
    rival_et_topology,
)
from repro.net.localization import PositionErrorModel, UniformDiskError


@dataclass(frozen=True)
class SweepPoint:
    """One point of a 1-D sweep: x value and goodput per MAC variant."""

    x: float
    goodput_mbps: Dict[str, float]


# ----------------------------------------------------------------------
# Task bodies — module-level so tasks pickle by reference into workers.
# Each must be a pure function of its keyword arguments.
# ----------------------------------------------------------------------
def _exposed_goodput(
    mac_kind: str,
    c2_x: float,
    seed: int,
    duration_s: float,
    params: Optional[ScenarioParams],
    error_model: Optional[PositionErrorModel],
) -> float:
    scenario = exposed_terminal_topology(
        mac_kind, c2_x=c2_x, seed=seed, params=params, error_model=error_model
    )
    return scenario.run_goodput_mbps(duration_s)


def _hidden_goodput(
    mac_kind: str,
    payload_bytes: int,
    n_ht: int,
    seed: int,
    duration_s: float,
    params: Optional[ScenarioParams],
) -> float:
    scenario = hidden_terminal_topology(
        mac_kind, payload_bytes=payload_bytes, n_ht=n_ht, seed=seed, params=params
    )
    return scenario.run_goodput_mbps(duration_s)


def _model_validation_goodput(
    window: int,
    payload_bytes: int,
    hidden: int,
    contenders: int,
    seed: int,
    duration_s: float,
) -> float:
    scenario = model_validation_topology(
        window=window,
        payload_bytes=payload_bytes,
        hidden=hidden,
        contenders=contenders,
        seed=seed,
    )
    return scenario.run_goodput_mbps(duration_s)


def _ht_adaptation_goodput(
    mac_kind: str,
    slots: Tuple[int, ...],
    seed: int,
    duration_s: float,
    params: Optional[ScenarioParams],
) -> float:
    scenario = ht_adaptation_topology(
        mac_kind, slots=tuple(slots), seed=seed, params=params
    )
    return scenario.run_goodput_mbps(duration_s)


def _office_floor_goodput(
    mac_kind: str,
    topology_seed: int,
    seed: int,
    duration_s: float,
    params: Optional[ScenarioParams],
    error_model: Optional[PositionErrorModel],
) -> float:
    scenario = office_floor_topology(
        mac_kind,
        topology_seed=topology_seed,
        seed=seed,
        params=params,
        error_model=error_model,
    )
    results = scenario.network.run(duration_s)
    return average_link_goodput_mbps(results, scenario.extra["flows"])


def _multi_et_goodput(
    mac_kind: str,
    seed: int,
    duration_s: float,
    params: Optional[ScenarioParams],
    enhanced_scheduler: bool,
) -> float:
    scenario = multi_et_topology(
        mac_kind, seed=seed, params=params, enhanced_scheduler=enhanced_scheduler
    )
    results = scenario.network.run(duration_s)
    return results.aggregate_goodput_bps / 1e6


def _rival_et_goodput(
    mac_kind: str,
    seed: int,
    duration_s: float,
    params: Optional[ScenarioParams],
    enhanced_scheduler: bool,
) -> float:
    scenario = rival_et_topology(
        mac_kind, seed=seed, params=params, enhanced_scheduler=enhanced_scheduler
    )
    results = scenario.network.run(duration_s)
    e1, e2 = scenario.extra["e1"], scenario.extra["e2"]
    ap1 = scenario.extra["ap1"]
    return results.goodput_mbps(e1.node_id, ap1.node_id) + results.goodput_mbps(
        e2.node_id, ap1.node_id
    )


def _csr_floor_cell(
    mac_kind: str,
    n_aps: int,
    clients_per_ap: int,
    backhaul_latency_ns: Optional[int],
    error_radius_m: float,
    topology_seed: int,
    seed: int,
    duration_s: float,
) -> Dict[str, float]:
    """One enterprise-floor simulation: goodput + latency percentiles.

    Returns plain scalars only — p99 comes from the in-process bucketed
    latency histograms (bucket counts never leave the process; see
    :class:`repro.obs.counters.Histogram`).
    """
    params = ns2_params()
    if mac_kind == "csr" and backhaul_latency_ns is not None:
        params = params.with_overrides(csr_backhaul_latency_ns=int(backhaul_latency_ns))
    error_model = UniformDiskError(error_radius_m) if error_radius_m > 0 else None
    scenario = enterprise_floor_topology(
        mac_kind,
        topology_seed=topology_seed,
        seed=seed,
        params=params,
        error_model=error_model,
        n_aps=n_aps,
        clients_per_ap=clients_per_ap,
    )
    net = scenario.network
    results = net.run(duration_s)
    p99s: List[float] = []
    for src, dst in scenario.extra["flows"]:
        hist = net.registry.get(f"latency/{src}->{dst}")
        if hist is not None and hist.count:
            p99s.append(hist.quantile(0.99))
    counters = net.counters()
    cell: Dict[str, float] = {
        "goodput_mbps": results.aggregate_goodput_bps / 1e6,
        # Worst per-flow p99 (ms): the flow the coordination hurt most.
        "p99_ms_worst": max(p99s) / 1e6 if p99s else float("inf"),
        "p99_ms_mean": sum(p99s) / len(p99s) / 1e6 if p99s else float("inf"),
        "flows_with_deliveries": float(len(p99s)),
    }
    for key in (
        "csr/txop_announced",
        "csr/coordination_rounds",
        "csr/concurrent_granted",
        "csr/concurrent_denied",
        "csr/power_capped_tx",
        "csr/backhaul_messages",
    ):
        if key in counters:
            cell[key] = float(counters[key])
    return cell


# ----------------------------------------------------------------------
# Runners
# ----------------------------------------------------------------------
def run_exposed_sweep(
    positions_m: Sequence[float],
    mac_kinds: Sequence[str] = ("dcf", "comap"),
    duration_s: float = 2.0,
    repeats: int = 3,
    seed: int = 0,
    params: Optional[ScenarioParams] = None,
    error_model: Optional[PositionErrorModel] = None,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> List[SweepPoint]:
    """Figs. 1 and 8: tagged-link goodput vs. C2's position."""
    tasks = [
        SweepTask(
            fn=_exposed_goodput,
            kwargs=dict(
                mac_kind=mac_kind,
                c2_x=float(x),
                seed=derive_seed(seed, "exposed", xi, mac_kind, rep),
                duration_s=duration_s,
                params=params,
                error_model=error_model,
            ),
            key=("exposed", float(x), mac_kind, rep),
        )
        for xi, x in enumerate(positions_m)
        for mac_kind in mac_kinds
        for rep in range(repeats)
    ]
    results = iter(run_tasks(tasks, jobs=jobs, cache=cache, label="exposed_sweep"))
    points: List[SweepPoint] = []
    for x in positions_m:
        row: Dict[str, float] = {}
        for mac_kind in mac_kinds:
            row[mac_kind] = sum(next(results) for _ in range(repeats)) / repeats
        points.append(SweepPoint(x=float(x), goodput_mbps=row))
    return points


def run_payload_sweep(
    payloads: Sequence[int],
    hidden_counts: Sequence[int] = (0, 1),
    duration_s: float = 2.0,
    repeats: int = 3,
    seed: int = 0,
    mac_kind: str = "dcf",
    params: Optional[ScenarioParams] = None,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> Dict[int, List[SweepPoint]]:
    """Fig. 2: goodput vs. payload size for each hidden-terminal count."""
    tasks = [
        SweepTask(
            fn=_hidden_goodput,
            kwargs=dict(
                mac_kind=mac_kind,
                payload_bytes=int(payload),
                n_ht=n_ht,
                seed=derive_seed(seed, "payload", n_ht, pi, mac_kind, rep),
                duration_s=duration_s,
                params=params,
            ),
            key=("payload", n_ht, int(payload), mac_kind, rep),
        )
        for n_ht in hidden_counts
        for pi, payload in enumerate(payloads)
        for rep in range(repeats)
    ]
    results = iter(run_tasks(tasks, jobs=jobs, cache=cache, label="payload_sweep"))
    curves: Dict[int, List[SweepPoint]] = {}
    for n_ht in hidden_counts:
        series: List[SweepPoint] = []
        for payload in payloads:
            mean = sum(next(results) for _ in range(repeats)) / repeats
            series.append(SweepPoint(x=float(payload), goodput_mbps={mac_kind: mean}))
        curves[n_ht] = series
    return curves


@dataclass(frozen=True)
class ModelValidationPoint:
    """One Fig. 7 point: analytical prediction vs. simulated measurement."""

    window: int
    hidden: int
    payload_bytes: int
    model_mbps: float
    sim_mbps: float


def run_model_validation(
    windows: Sequence[int] = (63, 255, 1023),
    hidden_counts: Sequence[int] = (0, 3, 5),
    payloads: Sequence[int] = (200, 600, 1000, 1400, 1800),
    contenders: int = 5,
    duration_s: float = 2.0,
    seed: int = 0,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> List[ModelValidationPoint]:
    """Fig. 7: the HT goodput model against the discrete-event simulator.

    The analytical predictions are closed-form and stay in the parent;
    only the simulations fan out.  Every grid point keeps the caller's
    ``seed`` verbatim (the historical behaviour — the grid coordinates
    already distinguish the scenarios).
    """
    params = ht_params()
    data_rate = params.rates.by_bps(params.data_rate_bps)
    model = HtGoodputModel(
        BianchiSlotModel(params.timing, data_rate, params.rates.base)
    )
    grid = [
        (hidden, window, payload)
        for hidden in hidden_counts
        for window in windows
        for payload in payloads
    ]
    tasks = [
        SweepTask(
            fn=_model_validation_goodput,
            kwargs=dict(
                window=window,
                payload_bytes=int(payload),
                hidden=hidden,
                contenders=contenders,
                seed=seed,
                duration_s=duration_s,
            ),
            key=("model_validation", window, hidden, int(payload)),
        )
        for hidden, window, payload in grid
    ]
    measured = run_tasks(tasks, jobs=jobs, cache=cache, label="model_validation")
    return [
        ModelValidationPoint(
            window=window,
            hidden=hidden,
            payload_bytes=payload,
            model_mbps=model.goodput_bps(window, contenders, hidden, payload) / 1e6,
            sim_mbps=sim_mbps,
        )
        for (hidden, window, payload), sim_mbps in zip(grid, measured)
    ]


def run_ht_cdf(
    mac_kinds: Sequence[str] = ("dcf", "comap"),
    duration_s: float = 2.0,
    seed: int = 0,
    params: Optional[ScenarioParams] = None,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> Dict[str, List[float]]:
    """Fig. 9: tagged-link goodput across the 10 HT topology configurations.

    The compared MAC variants share each configuration's seed (paired
    comparison, as in the testbed where both protocols ran on the same
    physical layout).
    """
    configurations = fig9_configurations()
    tasks = [
        SweepTask(
            fn=_ht_adaptation_goodput,
            kwargs=dict(
                mac_kind=mac_kind,
                slots=slots,
                seed=derive_seed(seed, "ht_cdf", index),
                duration_s=duration_s,
                params=params,
            ),
            key=("ht_cdf", index, mac_kind),
        )
        for index, slots in enumerate(configurations)
        for mac_kind in mac_kinds
    ]
    results = iter(run_tasks(tasks, jobs=jobs, cache=cache, label="ht_cdf"))
    samples: Dict[str, List[float]] = {kind: [] for kind in mac_kinds}
    for _index in range(len(configurations)):
        for mac_kind in mac_kinds:
            samples[mac_kind].append(next(results))
    return samples


def run_office_floor(
    variants: Sequence[Tuple[str, str, Optional[PositionErrorModel]]],
    n_topologies: int = 30,
    duration_s: float = 2.0,
    seed: int = 0,
    params: Optional[ScenarioParams] = None,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> Dict[str, List[float]]:
    """Fig. 10: per-topology average link goodput for each protocol variant.

    ``variants`` is a list of (label, mac_kind, error_model) triples, e.g.
    ``[("Basic DCF", "dcf", None), ("CO-MAP (0)", "comap", None),
    ("CO-MAP (10)", "comap", UniformDiskError(10.0))]``.  All variants
    share each topology's channel seed (paired comparison across the CDF).
    """
    tasks = [
        SweepTask(
            fn=_office_floor_goodput,
            kwargs=dict(
                mac_kind=mac_kind,
                topology_seed=1000 + topo,
                seed=derive_seed(seed, "office_floor", topo),
                duration_s=duration_s,
                params=params,
                error_model=error_model,
            ),
            key=("office_floor", topo, label),
        )
        for topo in range(n_topologies)
        for label, mac_kind, error_model in variants
    ]
    results = iter(run_tasks(tasks, jobs=jobs, cache=cache, label="office_floor"))
    samples: Dict[str, List[float]] = {label: [] for label, _, _ in variants}
    for _topo in range(n_topologies):
        for label, _, _ in variants:
            samples[label].append(next(results))
    return samples


def run_multi_et(
    duration_s: float = 2.0,
    seed: int = 0,
    params: Optional[ScenarioParams] = None,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> Dict[str, float]:
    """Fig. 6: aggregate goodput of three mutually-exposed links.

    Compares basic DCF, CO-MAP with the enhanced scheduler, and CO-MAP
    with the scheduler disabled (the CCA-override ablation).  The three
    variants share ``seed`` — a paired ablation on one topology.
    """
    configs = [
        ("dcf", "dcf", True),
        ("comap", "comap", True),
        ("comap-no-scheduler", "comap", False),
    ]
    tasks = [
        SweepTask(
            fn=_multi_et_goodput,
            kwargs=dict(
                mac_kind=mac_kind,
                seed=seed,
                duration_s=duration_s,
                params=params,
                enhanced_scheduler=scheduler,
            ),
            key=("multi_et", label),
        )
        for label, mac_kind, scheduler in configs
    ]
    results = run_tasks(tasks, jobs=jobs, cache=cache, label="multi_et")
    return {label: value for (label, _, _), value in zip(configs, results)}


def run_rival_et(
    duration_s: float = 1.0,
    seeds: Sequence[int] = (1, 2, 3),
    params: Optional[ScenarioParams] = None,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> Dict[str, float]:
    """Enhanced-scheduler ablation: two rival ETs sharing one receiver.

    Returns the mean aggregate goodput (Mbit/s) of the two exposed links
    under basic DCF, CO-MAP with the enhanced scheduler, and CO-MAP with
    the scheduler disabled (rival ETs collide at the shared AP).  The
    caller supplies explicit seeds; each is shared across the three
    variants (paired ablation).
    """
    configs = [
        ("dcf", "dcf", True),
        ("comap", "comap", True),
        ("comap-no-scheduler", "comap", False),
    ]
    tasks = [
        SweepTask(
            fn=_rival_et_goodput,
            kwargs=dict(
                mac_kind=mac_kind,
                seed=seed,
                duration_s=duration_s,
                params=params,
                enhanced_scheduler=scheduler,
            ),
            key=("rival_et", label, seed),
        )
        for label, mac_kind, scheduler in configs
        for seed in seeds
    ]
    results = iter(run_tasks(tasks, jobs=jobs, cache=cache, label="rival_et"))
    return {
        label: sum(next(results) for _ in seeds) / len(seeds)
        for label, _, _ in configs
    }


def run_csr_floor(
    mac_kinds: Sequence[str] = ("dcf", "comap", "csr"),
    ap_counts: Sequence[int] = (2, 4),
    backhaul_latencies_ns: Sequence[Optional[int]] = (200_000,),
    error_radii_m: Sequence[float] = (0.0,),
    clients_per_ap: int = 2,
    n_topologies: int = 3,
    duration_s: float = 0.25,
    seed: int = 0,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> List[Dict[str, object]]:
    """The C-SR enterprise-floor study: DCF vs CO-MAP vs C-SR.

    Sweeps AP count, backhaul latency, and localization-error radius
    over ``n_topologies`` client placements.  The compared MAC kinds
    share each cell's channel seed (paired comparison); the backhaul
    latency only reaches the "csr" variant — the other kinds have no
    coordination plane, so their cells are latency-independent and the
    sweep reuses one seed per (ap_count, radius, topology) coordinate.

    Returns one flat row dict per simulation: the sweep coordinates plus
    the :func:`_csr_floor_cell` metrics (aggregate goodput, per-flow p99
    latency, coordination counters).
    """
    grid = [
        (n_aps, latency, ri, radius, topo)
        for n_aps in ap_counts
        for latency in backhaul_latencies_ns
        for ri, radius in enumerate(error_radii_m)
        for topo in range(n_topologies)
    ]
    tasks = [
        SweepTask(
            fn=_csr_floor_cell,
            kwargs=dict(
                mac_kind=mac_kind,
                n_aps=int(n_aps),
                clients_per_ap=clients_per_ap,
                backhaul_latency_ns=latency,
                error_radius_m=float(radius),
                topology_seed=2000 + topo,
                seed=derive_seed(seed, "csr_floor", n_aps, ri, topo),
                duration_s=duration_s,
            ),
            key=("csr_floor", int(n_aps), latency, float(radius), topo, mac_kind),
        )
        for n_aps, latency, ri, radius, topo in grid
        for mac_kind in mac_kinds
    ]
    results = iter(run_tasks(tasks, jobs=jobs, cache=cache, label="csr_floor"))
    rows: List[Dict[str, object]] = []
    for n_aps, latency, _ri, radius, topo in grid:
        for mac_kind in mac_kinds:
            cell = next(results)
            row: Dict[str, object] = {
                "mac": mac_kind,
                "ap_count": int(n_aps),
                "backhaul_latency_ns": latency,
                "error_radius_m": float(radius),
                "topology": topo,
            }
            row.update(cell)
            rows.append(row)
    return rows
