"""The CO-MAP agent: one node's complete control plane.

Composes the Fig. 5 pipeline (neighbor table → PRR table → co-occurrence
map), the hidden-terminal estimator and the adaptation table behind a
small API that the CO-MAP MAC queries at runtime:

* :meth:`CoMapAgent.concurrency_allowed` — "can I transmit to X while
  link (S, R) is on the air?", answered from the co-occurrence map when
  cached, from eq. (3) otherwise (and then cached);
* :meth:`CoMapAgent.choose_receiver` — for APs: pick a queued receiver
  that passes validation ("it may choose another receiver further away
  from the current transmitter and verify again");
* :meth:`CoMapAgent.link_counts` / :meth:`CoMapAgent.advised_settings` —
  the (h, c) estimate and the resulting optimal (CW, payload).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Tuple

from repro.core.adaptation import AdaptationTable, Setting
from repro.core.co_occurrence import CoOccurrenceMap
from repro.core.concurrency import ConcurrencyValidator, ValidationResult
from repro.core.config import CoMapConfig
from repro.core.ht_estimation import HtEstimator
from repro.core.neighbor_table import NeighborTable
from repro.core.prr_table import PrrTable
from repro.phy.prr import PrrModel
from repro.phy.propagation import LogNormalShadowing
from repro.util.geometry import Point


class CoMapAgent:
    """Location-driven interference reasoning for one node."""

    def __init__(
        self,
        node_id: int,
        propagation: LogNormalShadowing,
        config: CoMapConfig,
        tx_power_dbm: float,
        t_cs_dbm: float,
        adaptation: Optional[AdaptationTable] = None,
    ) -> None:
        self.node_id = node_id
        self.config = config
        self.model = PrrModel(propagation=propagation, t_sir_db=config.t_sir_db)
        self.neighbor_table = NeighborTable(node_id)
        self.prr_table = PrrTable()
        self.co_map = CoOccurrenceMap(node_id)
        self.validator = ConcurrencyValidator(self.model, config.t_prr)
        self.estimator = HtEstimator(
            model=self.model,
            tx_power_dbm=tx_power_dbm,
            t_cs_dbm=t_cs_dbm,
            hidden_prob_threshold=config.hidden_prob_threshold,
            interference_prr_floor=config.interference_prr_floor,
        )
        self.adaptation = adaptation
        self._last_reported_position: Optional[Point] = None
        self._announce_worthwhile: Dict[int, bool] = {}
        self.stale_denials = 0
        # Wire the optional co-occurrence freshness knobs (all None/off by
        # default, so the map stays a pure cache unless explicitly enabled).
        self.co_map.ttl_ns = config.co_map_ttl_ns
        self.co_map.confidence_halflife_ns = config.co_map_confidence_halflife_ns
        self.co_map.min_confidence = config.co_map_min_confidence

    # ------------------------------------------------------------------
    # Location exchange
    # ------------------------------------------------------------------
    def observe_neighbor(
        self,
        node_id: int,
        position: Point,
        is_ap: bool = False,
        associated_ap: Optional[int] = None,
        now: int = 0,
    ) -> None:
        """Ingest one position report (from the AP's redistribution).

        A position change invalidates every cached PRR / co-occurrence
        verdict involving that node — this is the "rapid update" property
        that makes CO-MAP suitable for mobile WLANs.
        """
        previous = self.neighbor_table.position_of(node_id)
        self.neighbor_table.update(
            node_id, position, is_ap=is_ap, associated_ap=associated_ap, now=now
        )
        self._announce_worthwhile.clear()
        if previous is not None and previous != position:
            if node_id == self.node_id:
                self.prr_table.clear()
                self.co_map.clear()
            else:
                self.prr_table.invalidate_node(node_id)
                self.co_map.invalidate_node(node_id)

    def should_report_move(self, current: Point) -> bool:
        """Mobility management (Section V): report only significant moves.

        A node re-reports its position only when it has moved more than
        the configured threshold (half the tolerable inaccuracy).
        """
        if self._last_reported_position is None:
            return True
        moved = self._last_reported_position.distance_to(current)
        return moved > self.config.position_update_threshold_m

    def mark_reported(self, position: Point) -> None:
        """Record that this node just broadcast ``position``."""
        self._last_reported_position = position

    def forget_neighbor(self, node_id: int) -> None:
        """Erase everything known about ``node_id`` (it left, or its
        location input failed): neighbor row, cached PRR verdicts and
        co-occurrence entries.  Announcement-worthwhile caches are
        position-dependent, so they are dropped too.
        """
        self.neighbor_table.remove(node_id)
        self.prr_table.invalidate_node(node_id)
        self.co_map.invalidate_node(node_id)
        self._announce_worthwhile.clear()

    def location_stale(self, now: int) -> bool:
        """Is this node's *own* location knowledge stale or absent?

        Governed by :attr:`CoMapConfig.location_ttl_ns`; with the TTL
        unset (the default) location input never goes stale, preserving
        pre-staleness behavior bit-for-bit.
        """
        ttl = self.config.location_ttl_ns
        if ttl is None:
            return False
        return not self.neighbor_table.is_fresh(self.node_id, now, ttl)

    def neighbor_stale(self, node_id: int, now: int) -> bool:
        """Is the stored position of ``node_id`` stale or absent?"""
        ttl = self.config.location_ttl_ns
        if ttl is None:
            return False
        return not self.neighbor_table.is_fresh(node_id, now, ttl)

    # ------------------------------------------------------------------
    # Exposed-terminal path
    # ------------------------------------------------------------------
    def concurrency_allowed(
        self,
        ongoing_src: int,
        ongoing_dst: int,
        my_dst: int,
        now: Optional[int] = None,
    ) -> bool:
        """Full lookup path: co-occurrence map, then eq. (3), then cache.

        Passing ``now`` activates the freshness machinery: expired
        co-occurrence entries revert to unknown, and if the position of
        any endpoint of the validation is stale (per
        :attr:`CoMapConfig.location_ttl_ns`) the answer is a conservative
        *deny* — not cached, counted in :attr:`stale_denials` — because
        eq. (3) computed from stale coordinates could green-light a
        transmission that now collides.
        """
        if now is not None and self.config.location_ttl_ns is not None:
            for endpoint in (ongoing_src, ongoing_dst, self.node_id, my_dst):
                if self.neighbor_stale(endpoint, now):
                    self.stale_denials += 1
                    return False
        link = (ongoing_src, ongoing_dst)
        cached = self.co_map.query(link, my_dst, now=now)
        if cached is not None:
            return cached
        result = self.validate(ongoing_src, ongoing_dst, my_dst)
        self.co_map.record(link, my_dst, result.allowed, now=now if now is not None else 0)
        return result.allowed

    def validate(
        self, ongoing_src: int, ongoing_dst: int, my_dst: int
    ) -> ValidationResult:
        """Run (and cache in the PRR table) one eq. (3) validation."""
        cached = self.prr_table.lookup(ongoing_src, ongoing_dst, my_dst)
        if cached is not None:
            allowed = cached.passes(self.config.t_prr)
            return ValidationResult(
                allowed, cached.prr_theirs, cached.prr_mine, "from PRR table"
            )
        result = self.validator.validate(
            self.neighbor_table, ongoing_src, ongoing_dst, self.node_id, my_dst
        )
        self.prr_table.store(ongoing_src, ongoing_dst, my_dst, result.as_entry())
        return result

    def predicted_concurrent_sir_db(self, ongoing_src: int, my_dst: int) -> Optional[float]:
        """Expected SIR at my receiver while ``ongoing_src`` transmits.

        From eq. (1) with equal transmit powers the mean SIR is
        ``10 alpha log10(r2 / d2)`` (``d2`` = me→my receiver, ``r2`` =
        ongoing transmitter→my receiver).  Used to pick a safe data rate
        for an exposed concurrent transmission — "a higher data rate could
        be adapted if [the node] is located further away".
        Returns None when positions are missing.
        """
        d2 = self.neighbor_table.distance(self.node_id, my_dst)
        r2 = self.neighbor_table.distance(ongoing_src, my_dst)
        if d2 is None or r2 is None or d2 <= 0 or r2 <= 0:
            return None
        alpha = self.model.propagation.alpha
        return 10.0 * alpha * math.log10(r2 / d2)

    def announce_worthwhile(self, my_dst: int) -> bool:
        """Should transmissions to ``my_dst`` carry an announcement header?

        A header only helps if some neighbor could legally transmit
        concurrently with our link — i.e. there exists a neighbor ``n``
        (with its own receiver) for which the two-sided eq. (3) test
        passes against the ongoing link (me → my_dst).  When positions
        rule that out for every neighbor, the header is pure overhead and
        is suppressed.  Results are cached and invalidated on any
        position update.
        """
        cached = self._announce_worthwhile.get(my_dst)
        if cached is not None:
            return cached
        worthwhile = False
        table = self.neighbor_table
        for entry in table.neighbors():
            n = entry.node_id
            if n in (self.node_id, my_dst):
                continue
            receivers = self._plausible_receivers(entry)
            for n_dst in receivers:
                result = self.validator.validate(
                    table, ongoing_src=self.node_id, ongoing_dst=my_dst,
                    me=n, my_dst=n_dst,
                )
                if result.allowed:
                    worthwhile = True
                    break
            if worthwhile:
                break
        self._announce_worthwhile[my_dst] = worthwhile
        return worthwhile

    def _plausible_receivers(self, entry) -> list:
        """Receivers a neighbor would realistically transmit to."""
        if not entry.is_ap:
            return [entry.associated_ap] if entry.associated_ap is not None else []
        clients = [
            e.node_id
            for e in self.neighbor_table.neighbors()
            if e.associated_ap == entry.node_id
        ]
        if clients:
            return clients
        # A clientless AP is a mesh station: its peers are the plausible
        # receivers (the paper's conclusion applies CO-MAP to mesh
        # networks where "the locations of mesh stations are prior
        # knowledge").
        return [
            e.node_id
            for e in self.neighbor_table.neighbors(exclude_self=False)
            if e.is_ap and e.node_id != entry.node_id
        ]

    def choose_receiver(
        self, candidates: Iterable[int], ongoing_src: int, ongoing_dst: int
    ) -> Optional[int]:
        """First candidate receiver that passes concurrency validation."""
        for dst in candidates:
            if self.concurrency_allowed(ongoing_src, ongoing_dst, dst):
                return dst
        return None

    def concurrency_allowed_multi(self, ongoing_links, my_dst: int) -> bool:
        """Joint validation against several simultaneous ongoing links.

        The paper defers multi-interferer aggregation to future work;
        this extension checks each ongoing receiver individually and my
        own receiver against the power-summed interference (not cached —
        link combinations are too numerous for the co-occurrence map).
        """
        result = self.validator.validate_multi(
            self.neighbor_table, ongoing_links, self.node_id, my_dst
        )
        return result.allowed

    # ------------------------------------------------------------------
    # Hidden-terminal path
    # ------------------------------------------------------------------
    def link_counts(self, receiver: int) -> Tuple[int, int]:
        """``(N_ht, c)`` for the link from this node to ``receiver``."""
        counts = self.estimator.counts(self.neighbor_table, self.node_id, receiver)
        return counts["hidden"], counts["contenders"]

    def hidden_terminals(self, receiver: int):
        """Node ids classified as HTs of the link to ``receiver``."""
        return self.estimator.hidden_terminals(
            self.neighbor_table, self.node_id, receiver
        )

    def advised_settings(self, receiver: int) -> Optional[Setting]:
        """Optimal (CW, payload) for the current (h, c) estimate.

        Returns None when no adaptation table was configured.
        """
        if self.adaptation is None:
            return None
        hidden, contenders = self.link_counts(receiver)
        return self.adaptation.best_settings(hidden, contenders)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Multi-line dump of the Fig. 5 pipeline state."""
        return "\n\n".join(
            [
                self.neighbor_table.render(),
                self.prr_table.render(),
                self.co_map.render(),
            ]
        )
