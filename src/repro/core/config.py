"""CO-MAP protocol configuration.

Defaults follow the paper's Table I (NS-2 settings); the testbed scenarios
override the propagation and threshold fields through
:mod:`repro.experiments.params`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple


@dataclass
class CoMapConfig:
    """Thresholds and knobs of the CO-MAP control plane.

    Attributes
    ----------
    t_prr:
        Concurrency-validation threshold ``T_PRR`` (Table I: 95 %).  Both
        directions of the mutual-impact test must clear it.
    t_sir_db:
        Required signal-to-interference ratio used inside the PRR model —
        the paper sets it to the threshold of the *lowest* rate (4 dB on
        the testbed) or 10 for NS-2.
    hidden_prob_threshold:
        A neighbor is treated as hidden when its carrier-sense-miss
        probability (eq. 4) exceeds this (paper: 0.9).
    interference_prr_floor:
        A neighbor counts as an interferer of a link when its concurrent
        transmission would push the link PRR below this value.
    sr_window:
        Selective-repeat ARQ sending window ``W_send``.
    position_update_threshold_m:
        A node re-reports its position after moving this far — the paper
        sets it to half of the highest tolerable position inaccuracy.
    cw_choices / payload_choices:
        The grid the adaptation optimizer searches (Section IV-D3's
        precomputed 2-D array).
    """

    t_prr: float = 0.95
    t_sir_db: float = 10.0
    hidden_prob_threshold: float = 0.9
    interference_prr_floor: float = 0.5
    sr_window: int = 8
    #: Announcement implementation: "separate" header packet (testbed
    #: method, robust under rate adaptation) or "embedded" 4-byte early
    #: FCS (NS-2 method, cheaper and earlier, but overhearers must decode
    #: at the data rate).
    announce_mode: str = "separate"
    #: Contention window assumed for non-adaptive hidden terminals when
    #: precomputing the (CW, payload) table.  ``None`` restores the
    #: paper's homogeneous assumption (attackers share the tagged
    #: station's window) — kept as an ablation, since against saturated
    #: legacy interferers the homogeneous table advises pathologically
    #: large windows.
    attacker_window: int = 32
    #: Payload size assumed for non-adaptive hidden terminals (bytes).
    attacker_payload: int = 1000
    position_update_threshold_m: float = 5.0
    cw_choices: Tuple[int, ...] = (31, 63, 127, 255, 511, 1023)
    payload_choices: Tuple[int, ...] = tuple(range(100, 2001, 100))
    max_hidden_terminals: int = 10
    max_contenders: int = 10

    def __post_init__(self) -> None:
        if not 0.0 < self.t_prr < 1.0:
            raise ValueError(f"t_prr must lie in (0, 1), got {self.t_prr}")
        if not 0.0 < self.hidden_prob_threshold < 1.0:
            raise ValueError("hidden_prob_threshold must lie in (0, 1)")
        if not 0.0 < self.interference_prr_floor < 1.0:
            raise ValueError("interference_prr_floor must lie in (0, 1)")
        if self.sr_window < 1:
            raise ValueError("selective-repeat window must be at least 1")
        if self.announce_mode not in ("separate", "embedded"):
            raise ValueError("announce_mode must be 'separate' or 'embedded'")
        if self.position_update_threshold_m < 0:
            raise ValueError("position update threshold cannot be negative")
        if not self.cw_choices or not self.payload_choices:
            raise ValueError("adaptation grids cannot be empty")
