"""CO-MAP protocol configuration.

Defaults follow the paper's Table I (NS-2 settings); the testbed scenarios
override the propagation and threshold fields through
:mod:`repro.experiments.params`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple


@dataclass
class CoMapConfig:
    """Thresholds and knobs of the CO-MAP control plane.

    Attributes
    ----------
    t_prr:
        Concurrency-validation threshold ``T_PRR`` (Table I: 95 %).  Both
        directions of the mutual-impact test must clear it.
    t_sir_db:
        Required signal-to-interference ratio used inside the PRR model —
        the paper sets it to the threshold of the *lowest* rate (4 dB on
        the testbed) or 10 for NS-2.
    hidden_prob_threshold:
        A neighbor is treated as hidden when its carrier-sense-miss
        probability (eq. 4) exceeds this (paper: 0.9).
    interference_prr_floor:
        A neighbor counts as an interferer of a link when its concurrent
        transmission would push the link PRR below this value.
    sr_window:
        Selective-repeat ARQ sending window ``W_send``.
    position_update_threshold_m:
        A node re-reports its position after moving this far — the paper
        sets it to half of the highest tolerable position inaccuracy.
    cw_choices / payload_choices:
        The grid the adaptation optimizer searches (Section IV-D3's
        precomputed 2-D array).
    """

    t_prr: float = 0.95
    t_sir_db: float = 10.0
    hidden_prob_threshold: float = 0.9
    interference_prr_floor: float = 0.5
    sr_window: int = 8
    #: Announcement implementation: "separate" header packet (testbed
    #: method, robust under rate adaptation) or "embedded" 4-byte early
    #: FCS (NS-2 method, cheaper and earlier, but overhearers must decode
    #: at the data rate).
    announce_mode: str = "separate"
    #: Contention window assumed for non-adaptive hidden terminals when
    #: precomputing the (CW, payload) table.  ``None`` restores the
    #: paper's homogeneous assumption (attackers share the tagged
    #: station's window) — kept as an ablation, since against saturated
    #: legacy interferers the homogeneous table advises pathologically
    #: large windows.
    attacker_window: int = 32
    #: Payload size assumed for non-adaptive hidden terminals (bytes).
    attacker_payload: int = 1000
    position_update_threshold_m: float = 5.0
    cw_choices: Tuple[int, ...] = (31, 63, 127, 255, 511, 1023)
    payload_choices: Tuple[int, ...] = tuple(range(100, 2001, 100))
    max_hidden_terminals: int = 10
    max_contenders: int = 10
    #: Freshness horizon (ns) for a node's *own* location report.  When
    #: the node has not produced a position report within this window, the
    #: MAC reverts to plain DCF until the location service recovers.
    #: ``None`` (the default) disables staleness tracking entirely, which
    #: keeps every pre-existing scenario bit-identical.
    location_ttl_ns: Optional[int] = None
    #: Hard expiry (ns) for co-occurrence-map verdicts.  Entries older
    #: than this behave as *unknown* (recomputed on next use).  ``None``
    #: disables expiry.
    co_map_ttl_ns: Optional[int] = None
    #: Staleness-aware confidence decay half-life (ns) for co-occurrence
    #: entries.  An entry's confidence is ``0.5 ** (age / halflife)``;
    #: once it drops below :attr:`co_map_min_confidence` the verdict is
    #: treated as unknown.  ``None`` disables decay.
    co_map_confidence_halflife_ns: Optional[int] = None
    #: Confidence floor below which a decayed co-occurrence verdict no
    #: longer counts (used only when a half-life is configured).
    co_map_min_confidence: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.t_prr < 1.0:
            raise ValueError(f"t_prr must lie in (0, 1), got {self.t_prr}")
        if not 0.0 < self.hidden_prob_threshold < 1.0:
            raise ValueError("hidden_prob_threshold must lie in (0, 1)")
        if not 0.0 < self.interference_prr_floor < 1.0:
            raise ValueError("interference_prr_floor must lie in (0, 1)")
        if self.sr_window < 1:
            raise ValueError("selective-repeat window must be at least 1")
        if self.announce_mode not in ("separate", "embedded"):
            raise ValueError("announce_mode must be 'separate' or 'embedded'")
        if self.position_update_threshold_m < 0:
            raise ValueError("position update threshold cannot be negative")
        if not self.cw_choices or not self.payload_choices:
            raise ValueError("adaptation grids cannot be empty")
        for name in ("location_ttl_ns", "co_map_ttl_ns", "co_map_confidence_halflife_ns"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive when set, got {value}")
        if not 0.0 < self.co_map_min_confidence <= 1.0:
            raise ValueError("co_map_min_confidence must lie in (0, 1]")
