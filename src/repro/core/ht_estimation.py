"""Hidden-terminal and contender counting (Section IV-D1).

For a link S→R the hidden terminals are the nodes located *inside the
interference range of the link* and *outside the carrier-sense range of
S*.  With positions in hand this becomes two probabilistic tests:

* **interferer test** — eq. (3): a neighbor whose concurrent transmission
  would drop the link's PRR below a floor;
* **hidden test** — eq. (4): the probability that the neighbor's received
  power from S stays under ``T_cs`` exceeds 0.9.

Interferers that *can* sense S (eq. 4 probability <= threshold) are
*contenders* — they share the channel via CSMA rather than colliding
blindly.  Both counts feed the analytical model's ``(h, c)`` lookup for
packet-size/CW adaptation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.core.neighbor_table import NeighborTable
from repro.phy.prr import PrrModel


class InterferenceClass(enum.Enum):
    """How a neighbor relates to a given link."""

    HIDDEN = "hidden"
    CONTENDER = "contender"
    INDEPENDENT = "independent"


@dataclass(frozen=True)
class NeighborRole:
    """Classification of one neighbor with the evidence that produced it."""

    node_id: int
    klass: InterferenceClass
    prr_under_interference: float
    cs_miss_probability: float


class HtEstimator:
    """Classifies a node's neighbors relative to one of its links."""

    def __init__(
        self,
        model: PrrModel,
        tx_power_dbm: float,
        t_cs_dbm: float,
        hidden_prob_threshold: float = 0.9,
        interference_prr_floor: float = 0.95,
    ) -> None:
        self.model = model
        self.tx_power_dbm = tx_power_dbm
        self.t_cs_dbm = t_cs_dbm
        self.hidden_prob_threshold = hidden_prob_threshold
        self.interference_prr_floor = interference_prr_floor

    def classify(
        self, table: NeighborTable, sender: int, receiver: int
    ) -> List[NeighborRole]:
        """Classify every known neighbor relative to the link sender→receiver."""
        d_link = table.distance(sender, receiver)
        if d_link is None:
            return []
        roles: List[NeighborRole] = []
        for entry in table.neighbors():
            if entry.node_id in (sender, receiver):
                continue
            r_interferer = table.distance(entry.node_id, receiver)
            r_sense = table.distance(sender, entry.node_id)
            if r_interferer is None or r_sense is None:
                continue
            prr = self.model.prr(d_link, r_interferer)
            miss = self.model.carrier_sense_miss_probability(
                r_sense, self.tx_power_dbm, self.t_cs_dbm
            )
            if miss <= self.hidden_prob_threshold:
                # The neighbor (usually) hears the sender: it contends.
                klass = InterferenceClass.CONTENDER
            elif prr < self.interference_prr_floor:
                # Cannot sense us but would corrupt our receiver: hidden.
                klass = InterferenceClass.HIDDEN
            else:
                klass = InterferenceClass.INDEPENDENT
            roles.append(
                NeighborRole(
                    node_id=entry.node_id,
                    klass=klass,
                    prr_under_interference=prr,
                    cs_miss_probability=miss,
                )
            )
        return roles

    def counts(self, table: NeighborTable, sender: int, receiver: int) -> Dict[str, int]:
        """Return ``{"hidden": N_ht, "contenders": c, "independent": n}``."""
        tally = {"hidden": 0, "contenders": 0, "independent": 0}
        for role in self.classify(table, sender, receiver):
            if role.klass is InterferenceClass.HIDDEN:
                tally["hidden"] += 1
            elif role.klass is InterferenceClass.CONTENDER:
                tally["contenders"] += 1
            else:
                tally["independent"] += 1
        return tally

    def hidden_terminals(
        self, table: NeighborTable, sender: int, receiver: int
    ) -> List[int]:
        """Node ids of the link's hidden terminals."""
        return [
            role.node_id
            for role in self.classify(table, sender, receiver)
            if role.klass is InterferenceClass.HIDDEN
        ]
