"""Concurrency validation (Section IV-C1, Fig. 4).

On detecting an ongoing transmission, a node with a frame pending checks
both directions of mutual impact using eq. (3):

1. *my impact on them* — link distance ``d1`` = ongoing sender→receiver,
   interferer distance ``r1`` = me→ongoing receiver;
2. *their impact on me* — link distance ``d2`` = me→my receiver,
   interferer distance ``r2`` = ongoing sender→my receiver.

The transmission may proceed concurrently only if **both** PRRs clear
``T_PRR``.  All distances come from *reported* positions in the neighbor
table, which is how localization error enters the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.neighbor_table import NeighborTable
from repro.core.prr_table import PrrEntry
from repro.phy.prr import PrrModel


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of one concurrency validation."""

    allowed: bool
    prr_theirs: float
    prr_mine: float
    reason: str

    def as_entry(self) -> PrrEntry:
        """Convert to a cacheable :class:`PrrEntry`."""
        return PrrEntry(prr_theirs=self.prr_theirs, prr_mine=self.prr_mine)


#: Result used when positions are missing — never transmit blind.
_UNKNOWN = ValidationResult(False, 0.0, 0.0, "missing position information")


class ConcurrencyValidator:
    """Applies the two-sided eq. (3) test over a neighbor table."""

    def __init__(self, model: PrrModel, t_prr: float) -> None:
        if not 0.0 < t_prr < 1.0:
            raise ValueError(f"T_PRR must lie in (0, 1), got {t_prr}")
        self.model = model
        self.t_prr = t_prr

    def validate(
        self,
        table: NeighborTable,
        ongoing_src: int,
        ongoing_dst: int,
        me: int,
        my_dst: int,
    ) -> ValidationResult:
        """Run the mutual-impact test for one candidate concurrent link."""
        if me == ongoing_src or me == ongoing_dst:
            return ValidationResult(False, 0.0, 0.0, "I am part of the ongoing link")
        if my_dst in (ongoing_src, ongoing_dst):
            return ValidationResult(
                False, 0.0, 0.0, "my receiver is part of the ongoing link"
            )
        d1 = table.distance(ongoing_src, ongoing_dst)
        r1 = table.distance(me, ongoing_dst)
        d2 = table.distance(me, my_dst)
        r2 = table.distance(ongoing_src, my_dst)
        if None in (d1, r1, d2, r2):
            return _UNKNOWN
        prr_theirs = self.model.prr(d1, r1)
        if prr_theirs < self.t_prr:
            return ValidationResult(
                False, prr_theirs, 0.0, "my transmission would corrupt the ongoing link"
            )
        prr_mine = self.model.prr(d2, r2)
        if prr_mine < self.t_prr:
            return ValidationResult(
                False,
                prr_theirs,
                prr_mine,
                "my receiver is too close to the ongoing transmitter",
            )
        return ValidationResult(True, prr_theirs, prr_mine, "concurrent transmission safe")

    def validate_multi(
        self,
        table: NeighborTable,
        ongoing_links,
        me: int,
        my_dst: int,
    ) -> ValidationResult:
        """Mutual-impact test against *several* ongoing links at once.

        Extends the paper's single-interferer analysis (its stated future
        work) with mean-power aggregation: my transmission must leave
        every ongoing receiver's PRR above ``T_PRR`` individually, while
        my own receiver must survive the *combined* interference of all
        ongoing transmitters (via
        :meth:`repro.phy.prr.PrrModel.prr_multi`).
        """
        links = list(ongoing_links)
        if not links:
            raise ValueError("at least one ongoing link is required")
        worst_theirs = 1.0
        interferer_distances = []
        for src, dst in links:
            if me in (src, dst) or my_dst in (src, dst):
                return ValidationResult(
                    False, 0.0, 0.0, "I or my receiver participate in an ongoing link"
                )
            d1 = table.distance(src, dst)
            r1 = table.distance(me, dst)
            r2 = table.distance(src, my_dst)
            if None in (d1, r1, r2):
                return _UNKNOWN
            prr_theirs = self.model.prr(d1, r1)
            worst_theirs = min(worst_theirs, prr_theirs)
            if prr_theirs < self.t_prr:
                return ValidationResult(
                    False, prr_theirs, 0.0,
                    "my transmission would corrupt an ongoing link",
                )
            interferer_distances.append(r2)
        d2 = table.distance(me, my_dst)
        if d2 is None:
            return _UNKNOWN
        prr_mine = self.model.prr_multi(d2, interferer_distances)
        if prr_mine < self.t_prr:
            return ValidationResult(
                False, worst_theirs, prr_mine,
                "combined ongoing interference would corrupt my receiver",
            )
        return ValidationResult(
            True, worst_theirs, prr_mine, "concurrent with all ongoing links"
        )
