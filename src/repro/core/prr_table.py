"""The PRR table (Fig. 5): cached mutual-interference estimates.

For each (ongoing link, candidate receiver) combination the table stores
the two packet-reception rates of the concurrency-validation test:

* ``prr_theirs`` — eq. (3) with ``d1`` (ongoing sender→receiver) and
  ``r1`` (me→ongoing receiver): how badly *my* transmission would hurt
  the ongoing link;
* ``prr_mine`` — eq. (3) with ``d2`` (me→my receiver) and ``r2``
  (ongoing sender→my receiver): how badly the ongoing transmission
  would hurt *me*.

Entries are invalidated whenever any involved node reports a new position.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: Cache key: (ongoing_src, ongoing_dst, my_dst).
PrrKey = Tuple[int, int, int]


@dataclass(frozen=True)
class PrrEntry:
    """Cached pair of reception probabilities for one link combination."""

    prr_theirs: float
    prr_mine: float

    def passes(self, t_prr: float) -> bool:
        """True when both directions clear the validation threshold."""
        return self.prr_theirs >= t_prr and self.prr_mine >= t_prr


class PrrTable:
    """Cache of concurrency-validation computations for one node."""

    def __init__(self) -> None:
        self._entries: Dict[PrrKey, PrrEntry] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, ongoing_src: int, ongoing_dst: int, my_dst: int) -> Optional[PrrEntry]:
        """Return the cached entry or None (and count hit/miss)."""
        entry = self._entries.get((ongoing_src, ongoing_dst, my_dst))
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def store(
        self, ongoing_src: int, ongoing_dst: int, my_dst: int, entry: PrrEntry
    ) -> None:
        """Insert a computed entry."""
        self._entries[(ongoing_src, ongoing_dst, my_dst)] = entry

    def invalidate_node(self, node_id: int) -> int:
        """Drop every entry involving ``node_id``; returns how many."""
        doomed = [key for key in self._entries if node_id in key]
        for key in doomed:
            del self._entries[key]
        return len(doomed)

    def clear(self) -> None:
        """Drop everything (e.g. after this node itself moved)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def render(self) -> str:
        """Human-readable dump mirroring Fig. 5's PRR table."""
        lines = ["link (src->dst) vs my rx    PRR(theirs)  PRR(mine)"]
        for (src, dst, mine), entry in sorted(self._entries.items()):
            lines.append(
                f"{src}->{dst} with me->{mine:<4d}   "
                f"{entry.prr_theirs:10.1%} {entry.prr_mine:10.1%}"
            )
        return "\n".join(lines)
