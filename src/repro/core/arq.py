"""Selective-repeat ARQ bookkeeping (Section IV-C4).

When CO-MAP enables exposed concurrent transmissions, the two data frames
rarely finish together, so an ACK sent right after one of them can be
corrupted by the tail of the other.  Stop-and-wait would retransmit the
(already received) data frame; the paper instead adopts selective-repeat:

* the sender keeps a window of up to ``W_send`` frames; on a missing ACK
  it *advances* to the next frame instead of retransmitting;
* the receiver's ACKs carry the recently received sequence numbers, so a
  later ACK retroactively confirms frames whose own ACK was lost;
* once the window is exhausted, the sender retransmits exactly the frames
  never confirmed.

The classes below are pure bookkeeping (no timers, no simulator) so their
invariants are property-testable in isolation;
:class:`repro.mac.comap.CoMapMac` drives them from its ACK path.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Iterable, List, Optional, Tuple, TypeVar

ItemT = TypeVar("ItemT")


class SrSender(Generic[ItemT]):
    """Sender-side window of transmitted-but-unconfirmed items."""

    def __init__(self, window_size: int) -> None:
        if window_size < 1:
            raise ValueError("window size must be at least 1")
        self.window_size = window_size
        self._pending: "OrderedDict[int, ItemT]" = OrderedDict()
        self.advances = 0
        #: Deferred frames confirmed by a *later* frame's ACK — the ACK
        #: they were waiting on really was lost and the piggybacked
        #: sequence list rescued them.
        self.late_confirms = 0
        #: Deferred frames confirmed by their *own* ACK (it arrived after
        #: the sender had already advanced past them, e.g. a delayed ACK
        #: beating the retransmission).  Not a loss, so counted apart.
        self.prompt_confirms = 0

    def defer(self, seq: int, item: ItemT) -> None:
        """Record an unacknowledged frame and advance past it.

        Raises if the window is already full — the caller must retransmit
        (:meth:`next_retransmit`) before deferring more.
        """
        if self.window_full:
            raise RuntimeError(
                f"selective-repeat window ({self.window_size}) exhausted; "
                "retransmit before deferring more frames"
            )
        if seq in self._pending:
            raise ValueError(f"sequence {seq} already deferred")
        self._pending[seq] = item
        self.advances += 1

    def confirm(self, seqs: Iterable[int], own_seq: Optional[int] = None) -> List[ItemT]:
        """Remove every pending frame whose sequence appears in ``seqs``.

        Returns the confirmed items.  ``own_seq`` names the sequence the
        confirming ACK *directly* acknowledges: confirming that frame is
        a **prompt** confirmation (its own ACK arrived, merely later
        than the timeout), while every other hit is a **late**
        confirmation — a frame whose own ACK was genuinely lost and that
        this ACK's piggybacked list vouched for.  Before the split,
        ``late_confirms`` over-reported by counting both kinds.
        """
        confirmed: List[ItemT] = []
        for seq in seqs:
            item = self._pending.pop(seq, None)
            if item is not None:
                confirmed.append(item)
                if own_seq is not None and seq == own_seq:
                    self.prompt_confirms += 1
                else:
                    self.late_confirms += 1
        return confirmed

    def counters(self) -> dict:
        """Registry-source view of this window's counters."""
        return {
            "advances": self.advances,
            "prompt_confirms": self.prompt_confirms,
            "late_confirms": self.late_confirms,
            "outstanding": len(self._pending),
        }

    @property
    def window_full(self) -> bool:
        """True when no more frames may be deferred."""
        return len(self._pending) >= self.window_size

    @property
    def outstanding(self) -> int:
        """Number of deferred, still-unconfirmed frames."""
        return len(self._pending)

    def next_retransmit(self) -> Optional[Tuple[int, ItemT]]:
        """Oldest unconfirmed frame to resend, or None if all confirmed."""
        if not self._pending:
            return None
        seq = next(iter(self._pending))
        return seq, self._pending.pop(seq)

    def pending_seqs(self) -> List[int]:
        """Sequences currently awaiting confirmation (oldest first)."""
        return list(self._pending)


class SrReceiver:
    """Receiver-side history used to populate ACK confirmation lists."""

    def __init__(self, history: int) -> None:
        if history < 1:
            raise ValueError("history must be at least 1")
        self.history = history
        self._recent: "OrderedDict[int, None]" = OrderedDict()

    def on_received(self, seq: int) -> None:
        """Record one successfully received sequence number."""
        if seq in self._recent:
            self._recent.move_to_end(seq)
        else:
            self._recent[seq] = None
            while len(self._recent) > self.history:
                self._recent.popitem(last=False)

    def ack_payload(self) -> Tuple[int, ...]:
        """Sequences to piggyback on the next ACK (newest last)."""
        return tuple(self._recent)
