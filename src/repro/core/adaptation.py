"""Packet-size and contention-window adaptation (Section IV-D3).

Binds the hidden-terminal estimator's ``(h, c)`` counts to the
analytically optimal ``(W, payload)`` lookup.  The table is clamped at
configured maxima (the paper precomputes a finite 2-D array), so outlier
estimates degrade gracefully instead of triggering unbounded searches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analytical.bianchi import BianchiSlotModel
from repro.analytical.ht_model import HtGoodputModel
from repro.analytical.optimizer import OptimalSetting, SettingOptimizer
from repro.core.config import CoMapConfig

if TYPE_CHECKING:  # hints only — core must stay import-independent of mac
    from repro.mac.timing import PhyTiming
    from repro.phy.rates import Rate


@dataclass(frozen=True)
class Setting:
    """Advice handed to the MAC: constant CW and MSDU payload size."""

    window: int
    payload_bytes: int
    predicted_goodput_bps: float

    @staticmethod
    def from_optimal(optimal: OptimalSetting) -> "Setting":
        """Convert the optimizer's record into MAC-facing advice."""
        return Setting(
            window=optimal.window,
            payload_bytes=optimal.payload_bytes,
            predicted_goodput_bps=optimal.predicted_goodput_bps,
        )


class AdaptationTable:
    """The precomputed best-(W, payload) matrix, evaluated lazily."""

    def __init__(
        self,
        timing: "PhyTiming",
        data_rate: "Rate",
        ack_rate: "Rate",
        config: CoMapConfig,
        extra_header_ns: int = 0,
    ) -> None:
        self.config = config
        slot_model = BianchiSlotModel(
            timing=timing,
            data_rate=data_rate,
            ack_rate=ack_rate,
            extra_header_ns=extra_header_ns,
        )
        self._optimizer = SettingOptimizer(
            model=HtGoodputModel(slot_model),
            cw_choices=config.cw_choices,
            payload_choices=config.payload_choices,
            attacker_window=config.attacker_window,
            attacker_payload=config.attacker_payload,
        )

    def best_settings(self, hidden: int, contenders: int) -> Setting:
        """Advised (W, payload) for the estimated ``(h, c)`` counts.

        Counts are clamped to the table bounds, mirroring the paper's
        finite precomputed array.
        """
        h = max(0, min(int(hidden), self.config.max_hidden_terminals))
        c = max(0, min(int(contenders), self.config.max_contenders))
        return Setting.from_optimal(self._optimizer.best(h, c))

    def render(self) -> str:
        """The full matrix, rendered for reports and examples."""
        return self._optimizer.render_table(
            self.config.max_hidden_terminals, self.config.max_contenders
        )
