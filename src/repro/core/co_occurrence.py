"""The co-occurrence map (Section IV-C2).

Each entry records one ongoing link ``(src, dst)`` together with the set
of receivers this node may transmit to concurrently with that link.  For
a client the set holds at most its associated AP; for an AP it can hold
several clients ("an entry of co-occurrence map contains one link and all
the potential receivers to which it can transmit concurrently").

The map starts empty and is built gradually as the network operates —
no off-line site survey — which is why lookups distinguish *unknown*
(``None``: compute via eq. 3 and insert) from *known-disallowed*
(``False``: stay silent without recomputing).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

#: A directed link on the air: (source, destination).
Link = Tuple[int, int]


class CoOccurrenceMap:
    """Per-node cache of validated concurrent-transmission opportunities."""

    def __init__(self, owner_id: int) -> None:
        self.owner_id = owner_id
        self._allowed: Dict[Link, Set[int]] = {}
        self._denied: Dict[Link, Set[int]] = {}
        self.lookups = 0
        self.hits = 0

    def query(self, link: Link, my_dst: int) -> Optional[bool]:
        """Can I transmit to ``my_dst`` while ``link`` is on the air?

        Returns True/False when previously validated, None when unknown.
        """
        self.lookups += 1
        if my_dst in self._allowed.get(link, ()):
            self.hits += 1
            return True
        if my_dst in self._denied.get(link, ()):
            self.hits += 1
            return False
        return None

    def record(self, link: Link, my_dst: int, allowed: bool) -> None:
        """Store the outcome of one concurrency validation."""
        bucket = self._allowed if allowed else self._denied
        bucket.setdefault(link, set()).add(my_dst)

    def concurrent_receivers(self, link: Link) -> List[int]:
        """All receivers validated as concurrency-safe with ``link``."""
        return sorted(self._allowed.get(link, ()))

    def invalidate_node(self, node_id: int) -> int:
        """Drop every entry that involves ``node_id`` (it moved or left)."""
        removed = 0
        for table in (self._allowed, self._denied):
            doomed = [link for link in table if node_id in link]
            for link in doomed:
                removed += len(table[link])
                del table[link]
            for link, receivers in table.items():
                if node_id in receivers:
                    receivers.discard(node_id)
                    removed += 1
        return removed

    def clear(self) -> None:
        """Forget everything (the owner itself moved)."""
        self._allowed.clear()
        self._denied.clear()

    @property
    def entry_count(self) -> int:
        """Total number of (link, receiver) verdicts stored."""
        return sum(len(v) for v in self._allowed.values()) + sum(
            len(v) for v in self._denied.values()
        )

    def render(self) -> str:
        """Human-readable dump mirroring Fig. 5's co-occurrence map."""
        lines = [f"Co-occurrence map of node {self.owner_id}", "Source  Destination  My receivers"]
        for (src, dst), receivers in sorted(self._allowed.items()):
            lines.append(f"{src:>6d}  {dst:>11d}  {sorted(receivers)}")
        if not self._allowed:
            lines.append("(empty)")
        return "\n".join(lines)
