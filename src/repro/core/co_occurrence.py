"""The co-occurrence map (Section IV-C2).

Each entry records one ongoing link ``(src, dst)`` together with the set
of receivers this node may transmit to concurrently with that link.  For
a client the set holds at most its associated AP; for an AP it can hold
several clients ("an entry of co-occurrence map contains one link and all
the potential receivers to which it can transmit concurrently").

The map starts empty and is built gradually as the network operates —
no off-line site survey — which is why lookups distinguish *unknown*
(``None``: compute via eq. 3 and insert) from *known-disallowed*
(``False``: stay silent without recomputing).

Entries carry the simulated time they were recorded at, which feeds two
optional freshness mechanisms (both disabled by default so the map is a
pure cache, exactly as before):

* a hard TTL (:attr:`ttl_ns`) past which a verdict reverts to *unknown*;
* staleness-aware confidence decay (:attr:`confidence_halflife_ns`):
  confidence is ``0.5 ** (age / halflife)`` and a verdict below
  :attr:`min_confidence` no longer counts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: A directed link on the air: (source, destination).
Link = Tuple[int, int]


class CoOccurrenceMap:
    """Per-node cache of validated concurrent-transmission opportunities."""

    def __init__(self, owner_id: int) -> None:
        self.owner_id = owner_id
        # receiver -> simulated time (ns) the verdict was recorded at.
        self._allowed: Dict[Link, Dict[int, int]] = {}
        self._denied: Dict[Link, Dict[int, int]] = {}
        self.lookups = 0
        self.hits = 0
        self.expired = 0
        #: Hard expiry for verdicts (ns); ``None`` disables.
        self.ttl_ns: Optional[int] = None
        #: Confidence-decay half-life (ns); ``None`` disables decay.
        self.confidence_halflife_ns: Optional[int] = None
        #: Confidence floor for decayed verdicts.
        self.min_confidence: float = 0.5

    def _stale(self, recorded_at: int, now: Optional[int]) -> bool:
        """True when a verdict recorded at ``recorded_at`` no longer counts."""
        if now is None:
            return False
        age = now - recorded_at
        if self.ttl_ns is not None and age > self.ttl_ns:
            return True
        if self.confidence_halflife_ns is not None and age > 0:
            confidence = 0.5 ** (age / self.confidence_halflife_ns)
            if confidence < self.min_confidence:
                return True
        return False

    def confidence(self, link: Link, my_dst: int, now: int) -> Optional[float]:
        """Decayed confidence of a stored verdict, or None if absent.

        With no half-life configured a present entry has confidence 1.0.
        """
        for table in (self._allowed, self._denied):
            recorded_at = table.get(link, {}).get(my_dst)
            if recorded_at is not None:
                if self.confidence_halflife_ns is None:
                    return 1.0
                age = max(0, now - recorded_at)
                return 0.5 ** (age / self.confidence_halflife_ns)
        return None

    def query(self, link: Link, my_dst: int, now: Optional[int] = None) -> Optional[bool]:
        """Can I transmit to ``my_dst`` while ``link`` is on the air?

        Returns True/False when previously validated, None when unknown.
        Passing ``now`` enables the freshness checks: a stale verdict is
        dropped (counted in :attr:`expired`) and reported as unknown, so
        the caller revalidates via eq. 3 and re-inserts a fresh entry.
        """
        self.lookups += 1
        for table, verdict in ((self._allowed, True), (self._denied, False)):
            receivers = table.get(link)
            if receivers is None:
                continue
            recorded_at = receivers.get(my_dst)
            if recorded_at is None:
                continue
            if self._stale(recorded_at, now):
                del receivers[my_dst]
                if not receivers:
                    del table[link]
                self.expired += 1
                return None
            self.hits += 1
            return verdict
        return None

    def record(self, link: Link, my_dst: int, allowed: bool, now: int = 0) -> None:
        """Store the outcome of one concurrency validation."""
        bucket = self._allowed if allowed else self._denied
        other = self._denied if allowed else self._allowed
        # A revalidation may flip the verdict; never keep both.
        stale_side = other.get(link)
        if stale_side is not None:
            stale_side.pop(my_dst, None)
            if not stale_side:
                del other[link]
        bucket.setdefault(link, {})[my_dst] = now

    def concurrent_receivers(self, link: Link) -> List[int]:
        """All receivers validated as concurrency-safe with ``link``."""
        return sorted(self._allowed.get(link, ()))

    def invalidate_node(self, node_id: int) -> int:
        """Drop every entry that involves ``node_id`` (it moved or left)."""
        removed = 0
        for table in (self._allowed, self._denied):
            doomed = [link for link in table if node_id in link]
            for link in doomed:
                removed += len(table[link])
                del table[link]
            emptied = []
            for link, receivers in table.items():
                if node_id in receivers:
                    del receivers[node_id]
                    removed += 1
                    if not receivers:
                        emptied.append(link)
            for link in emptied:
                del table[link]
        return removed

    def clear(self) -> None:
        """Forget everything (the owner itself moved)."""
        self._allowed.clear()
        self._denied.clear()

    def corrupt(self, rng, flip_prob: float = 1.0) -> int:
        """Flip stored verdicts with ``flip_prob``; returns the flip count.

        Models a corrupted control-plane update: an *allowed* entry
        becomes *denied* and vice versa, keeping its timestamp.  The
        iteration order is sorted, so the same ``rng`` state always
        corrupts the same entries.
        """
        moves = []
        for allowed, table in ((True, self._allowed), (False, self._denied)):
            for link in sorted(table):
                receivers = table[link]
                for my_dst in sorted(receivers):
                    if flip_prob >= 1.0 or rng.random() < flip_prob:
                        moves.append((allowed, link, my_dst, receivers[my_dst]))
        for allowed, link, my_dst, recorded_at in moves:
            source = self._allowed if allowed else self._denied
            target = self._denied if allowed else self._allowed
            bucket = source[link]
            del bucket[my_dst]
            if not bucket:
                del source[link]
            target.setdefault(link, {})[my_dst] = recorded_at
        return len(moves)

    @property
    def entry_count(self) -> int:
        """Total number of (link, receiver) verdicts stored."""
        return sum(len(v) for v in self._allowed.values()) + sum(
            len(v) for v in self._denied.values()
        )

    def render(self) -> str:
        """Human-readable dump mirroring Fig. 5's co-occurrence map."""
        lines = [f"Co-occurrence map of node {self.owner_id}", "Source  Destination  My receivers"]
        for (src, dst), receivers in sorted(self._allowed.items()):
            lines.append(f"{src:>6d}  {dst:>11d}  {sorted(receivers)}")
        if not self._allowed:
            lines.append("(empty)")
        return "\n".join(lines)
