"""CO-MAP's control plane: the paper's primary contribution.

The pipeline of Fig. 5 — **neighbor table → PRR table → co-occurrence
map** — lives here, together with hidden-terminal counting (eq. 4), the
packet-size/contention-window adaptation table (Section IV-D3) and the
selective-repeat ARQ used against the ACK-loss problem (Section IV-C4).

The :class:`repro.core.protocol.CoMapAgent` facade composes all of it and
is what :class:`repro.mac.comap.CoMapMac` consults at runtime.
"""

from repro.core.config import CoMapConfig
from repro.core.neighbor_table import NeighborTable, NeighborEntry
from repro.core.prr_table import PrrTable, PrrEntry
from repro.core.co_occurrence import CoOccurrenceMap
from repro.core.concurrency import ConcurrencyValidator, ValidationResult
from repro.core.ht_estimation import HtEstimator, InterferenceClass, NeighborRole
from repro.core.adaptation import AdaptationTable, Setting
from repro.core.arq import SrSender, SrReceiver
from repro.core.protocol import CoMapAgent

__all__ = [
    "CoMapConfig",
    "NeighborTable",
    "NeighborEntry",
    "PrrTable",
    "PrrEntry",
    "CoOccurrenceMap",
    "ConcurrencyValidator",
    "ValidationResult",
    "HtEstimator",
    "InterferenceClass",
    "NeighborRole",
    "AdaptationTable",
    "Setting",
    "SrSender",
    "SrReceiver",
    "CoMapAgent",
]
