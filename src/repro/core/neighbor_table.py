"""The neighbor table (Fig. 3): per-neighbor position knowledge.

Each node reports its position to its associated AP; APs redistribute the
positions of nearby participants, so every node ends up knowing the
(possibly imperfect) coordinates of its neighbors within two hops.  The
table stores what *this* node currently believes, including when each
entry was last refreshed — stale entries can be expired under mobility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.util.geometry import Point


@dataclass
class NeighborEntry:
    """One row of the neighbor table."""

    node_id: int
    position: Point
    is_ap: bool = False
    associated_ap: Optional[int] = None
    updated_at: int = 0


class NeighborTable:
    """Position knowledge of one node about its 2-hop neighborhood."""

    def __init__(self, owner_id: int) -> None:
        self.owner_id = owner_id
        self._entries: Dict[int, NeighborEntry] = {}

    def update(
        self,
        node_id: int,
        position: Point,
        is_ap: bool = False,
        associated_ap: Optional[int] = None,
        now: int = 0,
    ) -> NeighborEntry:
        """Insert or refresh a neighbor's entry; returns the stored row.

        Updating the owner's own row is allowed — a node keeps its own
        (localization-estimated) position in the same structure, since all
        distance computations must use the *reported* coordinates, not
        ground truth.
        """
        entry = NeighborEntry(
            node_id=node_id,
            position=position,
            is_ap=is_ap,
            associated_ap=associated_ap,
            updated_at=now,
        )
        self._entries[node_id] = entry
        return entry

    def get(self, node_id: int) -> Optional[NeighborEntry]:
        """Return the entry for ``node_id`` or None if unknown."""
        return self._entries.get(node_id)

    def position_of(self, node_id: int) -> Optional[Point]:
        """Reported position of a node, or None if unknown."""
        entry = self._entries.get(node_id)
        return entry.position if entry is not None else None

    def distance(self, a: int, b: int) -> Optional[float]:
        """Distance between two known nodes, or None if either is unknown."""
        pa, pb = self.position_of(a), self.position_of(b)
        if pa is None or pb is None:
            return None
        return pa.distance_to(pb)

    def age_of(self, node_id: int, now: int) -> Optional[int]:
        """Nanoseconds since ``node_id``'s entry was refreshed, or None."""
        entry = self._entries.get(node_id)
        if entry is None:
            return None
        return max(0, now - entry.updated_at)

    def is_fresh(self, node_id: int, now: int, ttl_ns: Optional[int]) -> bool:
        """True when the entry exists and is within ``ttl_ns``.

        A ``None`` TTL means freshness is not tracked: any present entry
        counts as fresh (the pre-staleness behavior).
        """
        entry = self._entries.get(node_id)
        if entry is None:
            return False
        if ttl_ns is None:
            return True
        return now - entry.updated_at <= ttl_ns

    def confidence(self, node_id: int, now: int, halflife_ns: Optional[int]) -> float:
        """Staleness-decayed confidence in an entry: ``0.5 ** (age / halflife)``.

        Returns 0.0 for unknown nodes and 1.0 when decay is disabled.
        """
        entry = self._entries.get(node_id)
        if entry is None:
            return 0.0
        if halflife_ns is None:
            return 1.0
        age = max(0, now - entry.updated_at)
        return 0.5 ** (age / halflife_ns)

    def remove(self, node_id: int) -> bool:
        """Drop an entry (e.g. node left the network).  Returns True if present."""
        return self._entries.pop(node_id, None) is not None

    def neighbors(self, exclude_self: bool = True) -> List[NeighborEntry]:
        """All entries, optionally omitting the owner's own row."""
        rows = self._entries.values()
        if exclude_self:
            return [e for e in rows if e.node_id != self.owner_id]
        return list(rows)

    def within(self, center: Point, radius_m: float) -> List[NeighborEntry]:
        """Neighbors whose reported position lies within ``radius_m`` of a point."""
        return [
            e
            for e in self.neighbors()
            if e.position.distance_to(center) <= radius_m
        ]

    def expire_older_than(self, cutoff: int) -> int:
        """Remove entries not refreshed since ``cutoff``; returns how many."""
        stale = [
            node_id
            for node_id, e in self._entries.items()
            if e.updated_at < cutoff and node_id != self.owner_id
        ]
        for node_id in stale:
            del self._entries[node_id]
        return len(stale)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[NeighborEntry]:
        return iter(self._entries.values())

    def render(self) -> str:
        """Human-readable table, mirroring Fig. 3's illustration."""
        lines = [f"Neighbor table of node {self.owner_id}", "Neighbor      X        Y"]
        for e in sorted(self._entries.values(), key=lambda r: r.node_id):
            tag = " (AP)" if e.is_ap else ""
            lines.append(f"{e.node_id:>8d}{tag:5s} {e.position.x:8.1f} {e.position.y:8.1f}")
        return "\n".join(lines)
