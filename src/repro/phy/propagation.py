"""Radio propagation: the log-normal shadowing model of eq. (1).

The paper computes received power as::

    P_d [dBm] = P_d0 [dBm] - 10 * alpha * log10(d / d0) + X_sigma      (1)

where ``P_d0`` is the received power at reference distance ``d0`` (obtained
"through field measurements close to the transmitter or calculated using
the free space Friis equation"), ``alpha`` is the path-loss exponent and
``X_sigma`` is a zero-mean Gaussian with standard deviation ``sigma``
modelling shadowing.

We take the Friis route for the reference power: at 2.4 GHz and
``d0 = 1 m`` the free-space loss is ``20 log10(4 pi d0 f / c) ≈ 40.05 dB``
(unit antenna gains).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: Speed of light in m/s.
SPEED_OF_LIGHT = 299_792_458.0
#: Default WiFi carrier frequency (2.4 GHz band).
DEFAULT_FREQUENCY_HZ = 2.4e9

#: Relative inflation applied to :meth:`LogNormalShadowing.reach_radius_m`.
#: The radius is computed by inverting ``path_loss_db`` through ``10 **``;
#: re-evaluating the forward ``math.log10`` expression at the inverted
#: distance can land within a few ULP of the target, on either side.  A
#: 1e-9 relative pad corresponds to a ``10 * alpha * log10(1 + 1e-9)``
#: ≈ 1e-8 dB slack — orders of magnitude above the float64 round-trip
#: error and orders of magnitude below any physically meaningful margin —
#: so every radio strictly beyond the padded radius provably fails the
#: survivor test ``mean_dbm + margin >= threshold``.
REACH_RADIUS_SLACK = 1e-9


@dataclass(frozen=True)
class FreeSpaceReference:
    """Friis free-space path loss at a reference distance.

    ``loss_db(d)`` gives the free-space attenuation at distance ``d``;
    the shadowing model only consumes ``loss_db(d0)``.
    """

    frequency_hz: float = DEFAULT_FREQUENCY_HZ

    def loss_db(self, distance_m: float) -> float:
        """Free-space path loss in dB at ``distance_m`` (>= a few cm)."""
        if distance_m <= 0.0:
            raise ValueError(f"distance must be positive, got {distance_m}")
        wavelength = SPEED_OF_LIGHT / self.frequency_hz
        return 20.0 * math.log10(4.0 * math.pi * distance_m / wavelength)


class LogNormalShadowing:
    """The log-normal shadowing propagation model (eq. 1).

    Parameters
    ----------
    alpha:
        Path-loss exponent.  The paper measured 2.9 in its 80 m² office and
        uses 3.3 for the larger, more complex NS-2 floor.
    sigma_db:
        Standard deviation of the zero-mean Gaussian shadowing term
        (4 dB testbed, 5 dB NS-2).
    reference_distance_m:
        ``d0`` of eq. 1; the free-space Friis equation anchors the loss
        there.
    frequency_hz:
        Carrier frequency used for the Friis reference.
    """

    def __init__(
        self,
        alpha: float,
        sigma_db: float,
        reference_distance_m: float = 1.0,
        frequency_hz: float = DEFAULT_FREQUENCY_HZ,
    ) -> None:
        if alpha <= 0.0:
            raise ValueError(f"path-loss exponent must be positive, got {alpha}")
        if sigma_db < 0.0:
            raise ValueError(f"shadowing sigma must be non-negative, got {sigma_db}")
        if reference_distance_m <= 0.0:
            raise ValueError("reference distance must be positive")
        self.alpha = float(alpha)
        self.sigma_db = float(sigma_db)
        self.reference_distance_m = float(reference_distance_m)
        self._reference_loss_db = FreeSpaceReference(frequency_hz).loss_db(
            reference_distance_m
        )

    @property
    def reference_loss_db(self) -> float:
        """Friis loss at the reference distance ``d0``."""
        return self._reference_loss_db

    def path_loss_db(self, distance_m: float) -> float:
        """Mean (deterministic) path loss at ``distance_m`` in dB."""
        d = max(float(distance_m), self.reference_distance_m)
        return self._reference_loss_db + 10.0 * self.alpha * math.log10(
            d / self.reference_distance_m
        )

    def mean_rx_dbm(self, tx_power_dbm: float, distance_m: float) -> float:
        """Expected received power (no shadowing draw) in dBm."""
        return tx_power_dbm - self.path_loss_db(distance_m)

    def mean_rx_dbm_batch(
        self, tx_power_dbm: float, distances_m: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`mean_rx_dbm` over an array of distances.

        Uses ``numpy.log10``, which on SIMD-dispatched numpy builds can
        differ from ``math.log10`` in the last ULP — so this helper
        serves analytics and property tests, **not** the equivalence-
        critical channel fill (the vector backend fills its mean-power
        rows through the scalar expressions precisely so its results
        stay bit-identical to the scalar path; see
        :mod:`repro.phy.vector`).
        """
        d = np.maximum(np.asarray(distances_m, dtype=np.float64),
                       self.reference_distance_m)
        loss = self._reference_loss_db + 10.0 * self.alpha * np.log10(
            d / self.reference_distance_m
        )
        return tx_power_dbm - loss

    def shadowing_block(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """``count`` consecutive shadowing realizations from one stream.

        Bit-identical to ``count`` successive :meth:`shadowing_db` calls
        on the same generator: numpy's array fill consumes the
        underlying bit stream exactly as repeated scalar draws do
        (pinned by ``tests/test_vector_equivalence.py``).  The vector
        channel backend refills its per-link draw buffers through this,
        amortizing the per-call generator overhead over a whole block.
        """
        if count <= 0:
            raise ValueError(f"block size must be positive, got {count}")
        if self.sigma_db <= 0.0:
            return np.zeros(count, dtype=np.float64)
        return rng.normal(0.0, self.sigma_db, count)

    def shadowing_db(self, rng: np.random.Generator) -> float:
        """One shadowing realization ``X_sigma`` in dB (0.0 when sigma is 0).

        Split out from :meth:`sample_rx_dbm` so callers that cache the
        deterministic mean (the channel's per-pair path-loss cache) can
        add a fresh draw without recomputing the distance term.
        """
        return float(rng.normal(0.0, self.sigma_db)) if self.sigma_db > 0.0 else 0.0

    def sample_rx_dbm(
        self,
        tx_power_dbm: float,
        distance_m: float,
        rng: np.random.Generator,
    ) -> float:
        """Received power with one shadowing realization ``X_sigma`` drawn."""
        return self.mean_rx_dbm(tx_power_dbm, distance_m) + self.shadowing_db(rng)

    def range_for_rx_dbm(self, tx_power_dbm: float, rx_dbm: float) -> float:
        """Distance at which the *mean* received power equals ``rx_dbm``.

        Used to derive communication / carrier-sense / interference ranges
        (Section V, "Overhead of exchanging location information").
        """
        budget_db = tx_power_dbm - rx_dbm - self._reference_loss_db
        return self.reference_distance_m * 10.0 ** (budget_db / (10.0 * self.alpha))

    def reach_radius_m(
        self, tx_power_dbm: float, threshold_dbm: float, margin_db: float
    ) -> float:
        """Sound culling radius: beyond it, *every* receiver is culled.

        The below-floor cull keeps a receiver iff its deterministic mean
        power satisfies ``mean_dbm + margin_db >= threshold_dbm``, i.e.
        ``mean_dbm >= threshold_dbm - margin_db``.  ``mean_rx_dbm`` is
        non-increasing in distance (constant within ``d0``, strictly
        decreasing beyond), so the survivor set is contained in the disk
        of radius ``range_for_rx_dbm(tx, threshold - margin)`` — this
        method returns that radius, floored at ``d0`` (inside the
        reference distance the mean is distance-independent, so the
        clamp only ever *adds* candidates) and padded by
        :data:`REACH_RADIUS_SLACK` against the ``log10``/``10 **``
        round-trip error.  Soundness — no radio outside the disk ever
        survives the exhaustive cull — is property-tested in
        ``tests/test_spatial.py``; candidates inside the disk still run
        the exact scalar cull test, so the radius only needs to be a
        superset bound, never tight.
        """
        if margin_db < 0.0:
            raise ValueError(f"cull margin must be non-negative, got {margin_db}")
        radius = self.range_for_rx_dbm(tx_power_dbm, threshold_dbm - margin_db)
        radius = max(radius, self.reference_distance_m)
        return radius * (1.0 + REACH_RADIUS_SLACK)
