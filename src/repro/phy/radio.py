"""A half-duplex radio: clear-channel assessment and SIR-based reception.

Reception model (matching NS-2's interference handling, which the paper
validates its analytical model against):

* The radio **locks** onto the first frame that arrives while it is
  neither transmitting nor already locked, provided the frame's received
  power clears the rate's sensitivity.
* While locked it tracks the **maximum concurrent interference** (sum of
  all other in-air power).  At frame end the frame survives iff

  ``signal / (max_interference + noise_floor) >= sir_threshold(rate)``.

* Frames arriving during a lock are pure interference (no mid-frame
  capture by default); frames arriving while the radio transmits are
  missed entirely but still contribute energy afterwards.

Clear-channel assessment is pure energy detection against
``cs_threshold_dbm`` (the paper's ``T_cs``), which is what lets hidden
terminals arise: a node whose received energy stays under ``T_cs`` sees an
idle medium even while a distant sender is corrupting its receiver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.phy.channel import Channel, Transmission
from repro.phy.rates import sensitivity_mw, sir_threshold_ratio
from repro.util.geometry import Point
from repro.util.hotpath import hotpath_enabled
from repro.util.units import dbm_to_mw, mw_to_dbm

if TYPE_CHECKING:  # avoid a phy <-> mac import cycle; hints only
    from repro.mac.frames import Frame


@dataclass
class RadioConfig:
    """Per-radio PHY parameters.

    ``cs_threshold_dbm`` is the paper's ``T_cs``; ``noise_floor_dbm``
    defaults to the -95 dBm the paper quotes for 2.4 GHz WiFi.
    ``capture`` enables message-in-message capture: a later frame that is
    decodable *over* the ongoing reception re-locks the receiver (standard
    on commodity 802.11 hardware, and required for an exposed terminal's
    receiver to pick its own sender's frame out of an overheard weaker
    transmission it happened to lock first).
    """

    tx_power_dbm: float = 0.0
    cs_threshold_dbm: float = -82.0
    noise_floor_dbm: float = -95.0
    capture: bool = True


class _ReceptionLock:
    """Bookkeeping for the frame currently being received."""

    __slots__ = ("tx", "signal_mw", "max_interference_mw")

    def __init__(self, tx: Transmission, signal_mw: float, interference_mw: float):
        self.tx = tx
        self.signal_mw = signal_mw
        self.max_interference_mw = interference_mw


class Radio:
    """One node's PHY front end, attached to a :class:`Channel`."""

    def __init__(
        self,
        radio_id: int,
        position: Point,
        config: RadioConfig,
        channel: Channel,
    ) -> None:
        self.radio_id = radio_id
        self.position = position
        self.config = config
        self.channel = channel
        self.sim = channel.sim
        self.mac = None  # bound via bind_mac()
        #: Energy-change dispatch target for the vector backend's batch
        #: delivery: the bound MAC's ``on_energy_changed`` — or ``None``
        #: when that handler is the no-op PHY hook (marked ``_phy_noop``),
        #: letting the batch loop skip both the call and the energy
        #: argument it would have computed.  Calling a no-op versus not
        #: calling it is observationally identical.
        self._energy_cb = None
        self._cs_threshold_mw = dbm_to_mw(config.cs_threshold_dbm)
        self._noise_mw = dbm_to_mw(config.noise_floor_dbm)
        self._in_air: dict = {}  # Transmission -> rx power mW
        #: REPRO_HOTPATH snapshot (see repro.util.hotpath): gates the
        #: energy memo and the per-rate constant caches below.
        self._hotpath = hotpath_enabled()
        # Memoized sum(self._in_air.values()); every _in_air mutation sets
        # the dirty flag, so the memo is exactly the sum the uncached path
        # would compute over the same dict.
        self._energy_cache = 0.0
        self._energy_dirty = False
        self._current_tx: Optional[Transmission] = None
        self._lock: Optional[_ReceptionLock] = None
        self._busy = False
        # Counters (inspected by tests and metrics).
        self.frames_received = 0
        self.frames_corrupted = 0
        self.frames_missed = 0
        self.frames_transmitted = 0
        #: Cumulative airtime spent transmitting (ns) — duty-cycle metric.
        self.airtime_tx_ns = 0
        self._attached = False  # set by channel.attach via on_attached()
        channel.attach(self)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind_mac(self, mac) -> None:
        """Attach the MAC entity that receives PHY indications."""
        self.mac = mac
        handler = getattr(mac, "on_energy_changed", None)
        if handler is None or getattr(handler, "_phy_noop", False):
            self._energy_cb = None
        else:
            self._energy_cb = handler

    @property
    def attached(self) -> bool:
        """True while the radio is registered with its channel."""
        return self._attached

    def on_attached(self) -> None:
        """Channel callback: the radio joined (or re-joined) the medium."""
        self._attached = True

    def on_detached(self) -> None:
        """Channel callback: the radio left the medium mid-run.

        Resets all reception state: frames still in the air no longer
        reach this radio (a half-received lock counts as missed), CCA
        reads idle, and an own transmission still in flight is disowned —
        its ``on_own_tx_end`` will be ignored.  The MAC is expected to be
        suspended separately (see ``Network.detach_node``), so no busy or
        idle edge is delivered here.
        """
        self._attached = False
        if self._lock is not None:
            self.frames_missed += 1
            self._lock = None
        self._in_air.clear()
        self._energy_dirty = True
        self._current_tx = None
        self._busy = False

    def move_to(self, position: Point) -> None:
        """Update the radio's physical position (mobility support).

        Cached position-dependent channel state involving this radio —
        per-link shadowing draws and the deterministic path-loss cache
        that drives below-floor culling — describes paths that no longer
        exist, so it is dropped (via a per-radio index: O(degree), not
        O(all links)).
        """
        self.position = position
        self.channel.on_radio_moved(self.radio_id)

    def set_tx_power_dbm(self, dbm: float) -> None:
        """Change this radio's transmit power (C-SR power capping).

        Each radio owns its :class:`RadioConfig` instance, so the
        mutation is node-local.  Cached channel state that encodes the
        old power (mean rx powers, composed per-link powers, vector
        rows) is invalidated; per-link shadowing draws are untouched.
        No-op at the current power, so repeated caps/restores to the
        same value cost nothing.
        """
        if dbm == self.config.tx_power_dbm:
            return
        self.config.tx_power_dbm = dbm
        self.channel.on_radio_power_changed(self.radio_id)

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------
    @property
    def transmitting(self) -> bool:
        """True while this radio's own frame is on the air."""
        return self._current_tx is not None

    def energy_mw(self) -> float:
        """Total in-air power currently measured at this radio (mW).

        Hot sites (CCA, interference tracking, capture tests) call this
        several times per notification; the hot path memoizes the sum and
        recomputes only after ``_in_air`` changes.
        """
        if self._hotpath:
            if self._energy_dirty:
                self._energy_cache = (
                    sum(self._in_air.values()) if self._in_air else 0.0
                )
                self._energy_dirty = False
            return self._energy_cache
        if not self._in_air:
            return 0.0
        return sum(self._in_air.values())

    def _sensitivity_mw(self, rate) -> float:
        """``rate.sensitivity_dbm`` in mW (cached per rate on the hot path)."""
        if self._hotpath:
            return sensitivity_mw(rate)
        return dbm_to_mw(rate.sensitivity_dbm)

    def _sir_threshold(self, rate) -> float:
        """``rate.sir_threshold_db`` as a ratio (cached per rate on the hot path)."""
        if self._hotpath:
            return sir_threshold_ratio(rate)
        return 10.0 ** (rate.sir_threshold_db / 10.0)

    def energy_dbm(self) -> float:
        """In-air power in dBm; the noise floor when nothing is in the air."""
        energy = self.energy_mw()
        if energy <= 0.0:
            return self.config.noise_floor_dbm
        return mw_to_dbm(energy + self._noise_mw)

    def medium_busy(self) -> bool:
        """Clear-channel assessment: own transmission or energy over T_cs."""
        return self.transmitting or self.energy_mw() >= self._cs_threshold_mw

    @property
    def noise_mw(self) -> float:
        """Thermal noise floor in mW."""
        return self._noise_mw

    # ------------------------------------------------------------------
    # Transmit path
    # ------------------------------------------------------------------
    def start_transmission(self, frame: "Frame") -> Transmission:
        """Begin sending ``frame``; the radio is deaf until it completes."""
        if not self._attached:
            raise RuntimeError(
                f"radio {self.radio_id} is detached and cannot transmit"
            )
        if self._current_tx is not None:
            raise RuntimeError(
                f"radio {self.radio_id} is already transmitting "
                f"{self._current_tx.frame.describe()}"
            )
        if self._lock is not None:
            # Physically we cannot keep receiving while transmitting; the
            # half-received frame is lost.
            self.frames_missed += 1
            self._lock = None
        self.frames_transmitted += 1
        self._current_tx = self.channel.transmit(self, frame)
        self._update_busy()
        return self._current_tx

    def on_own_tx_end(self, tx: Transmission) -> None:
        """Channel callback: this radio's own frame finished."""
        if not self._attached:
            return  # detached mid-own-transmission; state already reset
        assert tx is self._current_tx, "transmission bookkeeping out of sync"
        self._current_tx = None
        self.airtime_tx_ns += tx.duration_ns
        frame = tx.frame
        self._update_busy()
        if self.mac is not None:
            self.mac.on_tx_complete(frame)

    # ------------------------------------------------------------------
    # Receive path (channel callbacks)
    #
    # SYNC CONTRACT: repro.phy.vector's batch delivery loops
    # (deliver_air_start / deliver_air_end) are field-for-field inlined
    # mirrors of on_air_start / on_air_end below.  Any behavioral change
    # here must be replicated there, or the vector equivalence suite
    # (tests/test_vector_equivalence.py) will catch the divergence.
    # ------------------------------------------------------------------
    def on_air_start(self, tx: Transmission, power_mw: float) -> None:
        """A foreign transmission began; update CCA and reception state."""
        if not self._attached:
            return  # delivery raced a detach; the radio never saw this frame
        self._in_air[tx] = power_mw
        self._energy_dirty = True
        if self._current_tx is None:
            if self._lock is None:
                if power_mw >= self._sensitivity_mw(tx.frame.rate):
                    interference = self.energy_mw() - power_mw
                    self._lock = _ReceptionLock(tx, power_mw, interference)
                    self._maybe_schedule_embedded_decode(self._lock)
                elif power_mw >= self._noise_mw:
                    # Detectable but undecodable: a genuine miss.  Frames
                    # below the noise floor are invisible to a real radio
                    # and are not counted — keeping this counter identical
                    # whether or not below-floor culling skipped them.
                    self.frames_missed += 1
            elif self.config.capture and self._captures_over_lock(tx, power_mw):
                # Message-in-message capture: the new frame drowns out the
                # ongoing reception; re-lock and count the old one lost.
                self.frames_missed += 1
                interference = self.energy_mw() - power_mw
                self._lock = _ReceptionLock(tx, power_mw, interference)
                self._maybe_schedule_embedded_decode(self._lock)
            else:
                # New arrival is interference for the ongoing reception.
                lock = self._lock
                interference = self.energy_mw() - lock.signal_mw
                if interference > lock.max_interference_mw:
                    lock.max_interference_mw = interference
        # While transmitting we are deaf: the frame is silently missed but
        # still contributes energy once our own transmission finishes.
        self._update_busy()
        if self.mac is not None:
            self.mac.on_energy_changed(self.energy_mw())

    def on_air_end(self, tx: Transmission) -> None:
        """A foreign transmission ended; maybe complete a reception."""
        if not self._attached:
            return  # detached while the frame was in flight
        self._in_air.pop(tx, None)
        self._energy_dirty = True
        lock = self._lock
        if lock is not None and lock.tx is tx:
            self._lock = None
            self._finish_reception(lock)
        self._update_busy()
        if self.mac is not None:
            self.mac.on_energy_changed(self.energy_mw())

    def _maybe_schedule_embedded_decode(self, lock: _ReceptionLock) -> None:
        """Partial packet decode of an embedded announcement (CO-MAP v1).

        The paper's first header implementation inserts an extra FCS
        after the sequence-number field "so that the PHY layer can pass
        the source and destination addresses to upper layers before the
        receipt of frame payload".  We model it by delivering the
        announcement once the address portion has been on the air —
        provided the lock survives (no capture/abort) and the
        interference seen so far leaves the header decodable.
        """
        frame = lock.tx.frame
        if not frame.meta.get("embedded_announce"):
            return
        from repro.mac.frames import EMBEDDED_DECODE_BYTES

        delay = frame.rate.airtime_ns(EMBEDDED_DECODE_BYTES)
        self.sim.schedule(delay, self._embedded_decode, lock)

    def _embedded_decode(self, lock: _ReceptionLock) -> None:
        """Deliver the announcement if the header portion decoded cleanly."""
        if self._lock is not lock or self.mac is None:
            return
        sir = lock.signal_mw / (lock.max_interference_mw + self._noise_mw)
        threshold = self._sir_threshold(lock.tx.frame.rate)
        if sir >= threshold:
            self.mac.on_header_overheard(lock.tx.frame, mw_to_dbm(lock.signal_mw))

    def _captures_over_lock(self, tx: Transmission, power_mw: float) -> bool:
        """Would ``tx`` decode with everything else (incl. the lock) as noise?"""
        if power_mw < self._sensitivity_mw(tx.frame.rate):
            return False
        interference = self.energy_mw() - power_mw
        threshold = self._sir_threshold(tx.frame.rate)
        return power_mw / (interference + self._noise_mw) >= threshold

    def _finish_reception(self, lock: _ReceptionLock) -> None:
        """Apply the SIR test and deliver or discard the frame."""
        frame = lock.tx.frame
        sir = lock.signal_mw / (lock.max_interference_mw + self._noise_mw)
        threshold = self._sir_threshold(frame.rate)
        rssi_dbm = mw_to_dbm(lock.signal_mw)
        if sir >= threshold:
            self.frames_received += 1
            if self.mac is not None:
                self.mac.on_frame_received(frame, rssi_dbm)
        else:
            self.frames_corrupted += 1
            if self.mac is not None:
                self.mac.on_frame_corrupted(frame)

    # ------------------------------------------------------------------
    # CCA transitions
    # ------------------------------------------------------------------
    def _update_busy(self) -> None:
        """Recompute CCA and notify the MAC on busy/idle edges."""
        busy = self.medium_busy()
        if busy == self._busy:
            return
        self._busy = busy
        if self.mac is None:
            return
        if busy:
            self.mac.on_medium_busy()
        else:
            self.mac.on_medium_idle()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Radio {self.radio_id} at {self.position}>"
