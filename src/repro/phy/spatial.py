"""Uniform hash-grid spatial index: O(density) candidate generation.

``REPRO_SPATIAL=1`` (see :mod:`repro.util.hotpath`) bounds the channel's
per-frame receiver sweep by *local density* instead of population.  The
below-floor cull (PR 3) already skips draws and events for receivers
whose mean power sits ``cull_margin_db`` below both thresholds, but the
exhaustive loop still *visits* every attached radio to run that test —
O(N) dict lookups and float compares per frame, the asymptotic wall for
city-scale floors.  This module replaces the sweep's domain: radios hash
into square grid cells keyed by ``(floor(x / cell), floor(y / cell))``,
and a sender queries only the cells overlapping the disk of its *reach
radius* — the distance at which the propagation mean provably falls
``cull_margin_db`` below the weakest threshold on the channel (see
:meth:`repro.phy.propagation.LogNormalShadowing.reach_radius_m`).

Soundness over tightness
------------------------

The grid is a *pre-filter*, never a decision procedure: every candidate
it returns still runs the exact scalar cull test, so the only
correctness requirement is that the query returns a **superset** of the
survivors.  That holds by construction — the reach radius is a sound
outer bound on the survivor disk, and the query visits the full cell
bounding box of that disk (corner cells included).  Per-node counters,
``rx_power_mw`` maps, and per-flow goodput are therefore bit-identical
to the exhaustive path (culled links consume no RNG draws — PR 3's
per-link substreams — so *not visiting* a culled link is
indistinguishable from visiting and skipping it).  The contract is
pinned by ``tests/test_spatial_equivalence.py``.

Maintenance is incremental through the channel's existing hooks:
``attach`` inserts, ``detach`` removes, ``on_radio_moved`` rehashes one
radio — all O(1).  ``version`` increments on every mutation so derived
structures (the vector backend's sparse per-sender plans) can validate
lazily instead of being invalidated eagerly.

Cell sizing is a pure performance knob (correctness never depends on
it): the channel sizes cells at the reach radius of the strongest
transmitter, clamped to the topology extent — a query then touches ~9
cells regardless of N, and a one-cell grid (floor smaller than the
reach radius) degrades gracefully to the exhaustive sweep.
"""

from __future__ import annotations

from math import floor, inf
from typing import Dict, List, Set, Tuple

from repro.util.hotpath import spatial_enabled  # noqa: F401  (re-export)

_CellKey = Tuple[int, int]


class SpatialIndex:
    """Uniform hash grid over point members keyed by integer id.

    Cells are created on first insert and dropped when emptied, so
    memory is O(members + non-empty cells) regardless of the coordinate
    range (city floors hash as cheaply as office floors).  Membership
    mutations bump :attr:`version`; readers that cache per-member
    derived state (the vector backend's sparse plans) compare versions
    instead of subscribing to invalidation callbacks.
    """

    __slots__ = ("cell_size_m", "version", "_cell_of", "_cells")

    def __init__(self, cell_size_m: float) -> None:
        if not cell_size_m > 0.0:
            raise ValueError(f"cell size must be positive, got {cell_size_m}")
        self.cell_size_m = float(cell_size_m)
        #: Bumped on every add/remove/move; lets derived caches validate lazily.
        self.version = 0
        self._cell_of: Dict[int, _CellKey] = {}
        self._cells: Dict[_CellKey, Set[int]] = {}

    def __len__(self) -> int:
        return len(self._cell_of)

    @property
    def cell_count(self) -> int:
        """Number of non-empty cells."""
        return len(self._cells)

    def __contains__(self, member_id: int) -> bool:
        return member_id in self._cell_of

    def _key(self, x: float, y: float) -> _CellKey:
        c = self.cell_size_m
        return (floor(x / c), floor(y / c))

    def add(self, member_id: int, x: float, y: float) -> None:
        """Insert a member; re-adding an existing id is an error."""
        if member_id in self._cell_of:
            raise ValueError(f"member {member_id} already indexed")
        key = self._key(x, y)
        self._cell_of[member_id] = key
        self._cells.setdefault(key, set()).add(member_id)
        self.version += 1

    def remove(self, member_id: int) -> None:
        """Drop a member; removing an unknown id is an error."""
        key = self._cell_of.pop(member_id, None)
        if key is None:
            raise ValueError(f"member {member_id} is not indexed")
        bucket = self._cells[key]
        bucket.discard(member_id)
        if not bucket:
            del self._cells[key]
        self.version += 1

    def move(self, member_id: int, x: float, y: float) -> None:
        """Rehash a member to its new position (no-op within its cell)."""
        old = self._cell_of.get(member_id)
        if old is None:
            raise ValueError(f"member {member_id} is not indexed")
        new = self._key(x, y)
        if new == old:
            # Same cell: membership unchanged, but consumers caching
            # position-derived state (mean-power rows) must still see a
            # new version — the *position* moved even if the cell didn't.
            self.version += 1
            return
        bucket = self._cells[old]
        bucket.discard(member_id)
        if not bucket:
            del self._cells[old]
        self._cell_of[member_id] = new
        self._cells.setdefault(new, set()).add(member_id)
        self.version += 1

    def query_disk(self, x: float, y: float, radius_m: float) -> List[int]:
        """Ids of all members in cells overlapping the disk (a superset).

        Visits the cell bounding box of the disk — members up to one
        cell diagonal outside the radius may be returned, and callers
        must re-test each candidate (the channel runs the exact cull
        check).  When the box spans more cells than exist, iterates the
        non-empty cells instead, so degenerate huge-radius queries cost
        O(non-empty cells), never O(box area).
        """
        c = self.cell_size_m
        i0 = floor((x - radius_m) / c)
        i1 = floor((x + radius_m) / c)
        j0 = floor((y - radius_m) / c)
        j1 = floor((y + radius_m) / c)
        cells = self._cells
        out: List[int] = []
        if (i1 - i0 + 1) * (j1 - j0 + 1) <= len(cells):
            get = cells.get
            for i in range(i0, i1 + 1):
                for j in range(j0, j1 + 1):
                    bucket = get((i, j))
                    if bucket:
                        out.extend(bucket)
        else:
            for (i, j), bucket in cells.items():
                if i0 <= i <= i1 and j0 <= j <= j1:
                    out.extend(bucket)
        return out

    def members(self) -> Dict[int, _CellKey]:
        """Snapshot of every member's cell key (brute-force test oracle)."""
        return dict(self._cell_of)

    def occupancy(self) -> List[int]:
        """Member count of each non-empty cell (order unspecified)."""
        return [len(bucket) for bucket in self._cells.values()]


# ----------------------------------------------------------------------
# Process-level stats for run manifests (satellite: sweep attribution)
# ----------------------------------------------------------------------
class _Aggregate:
    """Constant-memory min/max/sum/count over recorded samples."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = inf
        self.maximum = -inf

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.total / self.count,
        }


_cell_sizes = _Aggregate()
_reach_radii = _Aggregate()


def record_grid_built(cell_size_m: float) -> None:
    """Channels report each grid they size; feeds the manifest block."""
    _cell_sizes.record(cell_size_m)


def record_reach_radius(radius_m: float) -> None:
    """Channels report each distinct reach radius they resolve."""
    _reach_radii.record(radius_m)


def reset_spatial_stats() -> None:
    """Forget recorded stats (test isolation)."""
    global _cell_sizes, _reach_radii
    _cell_sizes = _Aggregate()
    _reach_radii = _Aggregate()


def spatial_manifest_block() -> Dict[str, object]:
    """The ``spatial`` block recorded in run manifests.

    Reports the mode flag plus cell-size / reach-radius aggregates of
    every grid built *in this process* since the last reset.  Sweep
    workers in a process pool size their own grids; their stats are not
    shipped back to the parent — the block attributes the parent-side
    configuration, and per-channel counters (``channel/spatial_*``)
    carry the per-run detail.
    """
    block: Dict[str, object] = {"enabled": spatial_enabled()}
    if _cell_sizes.count:
        block["cell_size_m"] = _cell_sizes.as_dict()
    if _reach_radii.count:
        block["reach_radius_m"] = _reach_radii.as_dict()
    return block
