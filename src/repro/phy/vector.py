"""Struct-of-arrays channel backend: batched per-frame receiver evaluation.

``REPRO_VECTOR=1`` (see :mod:`repro.util.hotpath`) replaces the
channel's per-receiver scalar loop with this backend: per transmitted
frame, every candidate receiver is evaluated in one pass over dense
per-sender arrays —

* **mean-power rows** — per sender, ``float64`` rows of mean received
  power in dBm and mW over all attached-radio slots, maintained lazily
  and invalidated through the same :meth:`Channel.on_radio_moved` index
  the scalar pair cache uses;
* **array culling** — the below-floor cull test (``mean + margin``
  under both the noise floor and the carrier-sense threshold) computed
  as one vector comparison over the row instead of two python compares
  per receiver;
* **buffered shadowing draws** — per ``("shadowing", band, tx, rx)``
  substream, draws are pulled in blocks via
  :meth:`LogNormalShadowing.shadowing_block` and aligned per sender
  into a column-per-link **draw matrix** (see :class:`_SenderPlan`)
  whose received powers are composed in bulk — one broadcast float64
  multiply per matrix build, one list index per frame; numpy's array
  fill consumes the bit stream exactly as sequential scalar draws do,
  so per-link draws stay **bit-identical** to scalar
  ``RngStreams.substream`` output — pinned by
  ``tests/test_vector_equivalence.py``;
* **hoisted per-rate constants** — the sensitivity and SIR-threshold
  linear constants are resolved once per frame at transmit time and
  threaded into delivery, where ``power >= sensitivity`` and the
  capture/SIR tests run as the exact same python-float compares the
  scalar radio performs (the array-kernel forms live on as
  :func:`decode_masks` / :func:`sir_ok_mask` / :func:`capture_mask`,
  property-tested against the scalar expressions);
* **batch delivery** — start-of-air and end-of-air processing for all
  receivers of a frame runs as one inlined loop that mirrors
  :meth:`Radio.on_air_start` / :meth:`Radio.on_air_end` **field for
  field** (see the sync note in :mod:`repro.phy.radio`), hoists the
  per-frame constants, keeps the energy memo clean-before-append so
  the incremental update equals the ordered dict sum bit for bit, and
  skips the per-receiver ``on_energy_changed`` dispatch entirely when
  the bound MAC's handler is the no-op PHY hook (``Radio._energy_cb``).

Sparse spatial plans (``REPRO_SPATIAL`` × ``REPRO_VECTOR``)
-----------------------------------------------------------

With the channel's spatial index active the dense machinery above would
still cost O(N) per sender (rows) and O(N²) memory across senders, so
the backend switches to **sparse candidate-indexed plans**: per sender,
the grid's candidate set (attach-order sorted, reach-radius sound — see
:mod:`repro.phy.spatial`) replaces the all-slots row, and the cull test,
mean fills, and draw matrix run over those k candidates only.  Plans
are stamped with the grid's ``version`` (and the sender's tx power)
and validated lazily at transmit time — mobility bumps the version, so
a move invalidates every sender's plan in O(1) without walking them;
stale plans retire their draw cursors before being replaced, exactly
like dense plans, so substream consumption order is unchanged.  When
spatial mode is off the dense path runs bit-for-bit as before.

Equivalence contract
--------------------

Per-node counters, ``rx_power_mw`` maps, and per-flow goodput are
**bit-identical** to the scalar path (with or without
``REPRO_HOTPATH``): every value the backend produces comes from the
same scalar expression the per-receiver loop evaluates — rows are
filled with ``math.log10``-based path loss and python ``10 **``
conversions (numpy's SIMD transcendentals differ in the last ULP and
are therefore *never* used on this path; see
:meth:`LogNormalShadowing.mean_rx_dbm_batch` for the batch variant
reserved for analytics), draws are buffered but consumed in the same
per-link order, and the float64 adds/multiplies/compares that *are*
batched are IEEE-exact matches of their python-float counterparts.
Only event bookkeeping (``engine/events_fired``) may differ.  The
contract is enforced by the differential harness and golden fixtures
in ``tests/test_vector_equivalence.py`` / ``tests/golden/``.

numpy is an optional extra for this backend (``pip install
repro[vector]``); constructing it without numpy raises
:class:`RuntimeError`.  When ``REPRO_VECTOR`` is unset the channel
never imports this module and runs the scalar path unchanged.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

try:  # guarded: numpy is the `vector` optional extra
    import numpy as np
except ImportError:  # pragma: no cover - exercised via _require_numpy tests
    np = None  # type: ignore[assignment]

from repro.util.units import dbm_to_mw

if TYPE_CHECKING:  # avoid import cycles; hints only
    from repro.mac.frames import Frame
    from repro.phy.channel import Channel, Transmission
    from repro.phy.radio import Radio

#: Shadowing-draw block size when a plan's draw matrix refills (every
#: link pulls this many at once).  Partitioning draws into blocks of any
#: size is invisible to the draw values: an array fill consumes the
#: underlying bit stream exactly as sequential scalar draws do, so ``n``
#: draws are bitwise the same whether pulled 1, 8, or 64 at a time (the
#: generator state is shared with the scalar path, so buffered draws are
#: *committed* — see the VectorBackend docstring).
DRAW_CHUNK = 64

#: Minimum draw-matrix width at plan build (see _SenderPlan): wide
#: enough to amortize the build, narrow enough that a short-lived plan
#: commits few draws per link.
INITIAL_DRAW_CHUNK = 8


def _require_numpy() -> None:
    if np is None:
        raise RuntimeError(
            "REPRO_VECTOR=1 requires numpy, which is not installed; "
            "install the vector extra (pip install repro[vector]) or "
            "unset REPRO_VECTOR to run the scalar channel path"
        )


# ----------------------------------------------------------------------
# Pure array kernels (property-tested against the scalar radio
# expressions in tests/test_vector_kernel.py)
# ----------------------------------------------------------------------
def decode_masks(powers_mw, sensitivity_mw: float, noise_floor_mw):
    """``(decodable, detectable)`` boolean masks over a power batch.

    ``decodable[i]`` is the scalar radio's lock precondition
    (``power >= sensitivity``); ``detectable[i]`` its missed-frame
    precondition (``power >= noise_floor``).  Comparisons are float64
    and bit-identical to the python-float compares they replace.
    """
    p = np.asarray(powers_mw, dtype=np.float64)
    return p >= sensitivity_mw, p >= np.asarray(noise_floor_mw, dtype=np.float64)


def sir_ok_mask(signal_mw, interference_mw, noise_mw, threshold_ratio: float):
    """Array form of the radio's SIR test: ``s / (i + n) >= thr``."""
    s = np.asarray(signal_mw, dtype=np.float64)
    i = np.asarray(interference_mw, dtype=np.float64)
    n = np.asarray(noise_mw, dtype=np.float64)
    return s / (i + n) >= threshold_ratio


def capture_mask(powers_mw, energy_mw, noise_mw, sensitivity_mw: float,
                 threshold_ratio: float):
    """Array form of ``Radio._captures_over_lock``.

    A frame captures iff it clears sensitivity **and** decodes with all
    other in-air energy (``energy - power``) plus noise as interference.
    """
    p = np.asarray(powers_mw, dtype=np.float64)
    e = np.asarray(energy_mw, dtype=np.float64)
    n = np.asarray(noise_mw, dtype=np.float64)
    return (p >= sensitivity_mw) & (p / (e - p + n) >= threshold_ratio)


class _MeanRow:
    """One sender's dense mean-power row over all attached-radio slots.

    ``dbm``/``mw`` are float64 arrays for the vectorized cull test;
    ``mw_list`` shadows ``mw`` as python floats so the per-link power
    composition stays in pure python arithmetic (no numpy scalar types
    leak into ``rx_power_mw``).  Entries are filled lazily through the
    exact scalar expressions (``LogNormalShadowing.mean_rx_dbm`` +
    ``dbm_to_mw``), so a row value always equals the scalar path's.

    ``plan`` caches the survivor set derived from this row (see
    :class:`_SenderPlan`); it is nulled whenever any slot of the row is
    invalidated, so plan and row can never disagree.
    """

    __slots__ = ("dbm", "mw", "valid", "mw_list", "plan")

    def __init__(self, n: int) -> None:
        self.dbm = np.empty(n, dtype=np.float64)
        self.mw = np.empty(n, dtype=np.float64)
        self.valid = np.zeros(n, dtype=bool)
        self.mw_list: List[float] = [0.0] * n
        self.plan: Optional[_SenderPlan] = None


class _SenderPlan:
    """One sender's precomputed survivor set and per-link constants.

    The cull mask over a mean row is a pure function of the row, the
    channel's margin, and the per-slot noise/carrier-sense arrays — all
    of which change only on attach/detach/mobility, never per frame.  So
    the masked-array work (``row.dbm + margin`` compares, flatnonzero,
    noise-slice fancy indexing, radio-object gathers) runs once per row
    (in)validation here, and the per-frame transmit loop touches only
    plain python lists and whole-array numpy ops.

    In ``per_frame`` shadowing mode (with sigma > 0) the plan also owns
    a **draw matrix**: every survivor link's pending shadowing draws,
    column-aligned so that draw index ``j`` of every link sits in row
    ``j``.  The matrix is stored *post-composition*: one broadcast
    float64 multiply of the mean-power array against the python-pow
    ``db_to_ratio`` matrix (IEEE-exact per element, so bit-identical to
    the scalar per-link composition), converted once to ``rows`` — a
    python list of per-draw power lists — so the per-frame transmit
    path is a single list index with no numpy work at all.  Alignment
    is achieved at build time by topping each link's buffer up to a
    common width with *committed* draws from its own substream (block
    partitioning is draw-invisible; see :data:`DRAW_CHUNK`), and
    :meth:`VectorBackend._retire_plan` writes the consumed count back to
    the per-link buffers whenever a plan is invalidated, so every link's
    substream consumption order is exactly the scalar path's.
    """

    __slots__ = (
        "rx_radios", "rx_ids", "mw", "mw_arr", "noise_mw", "noise_list",
        "culled", "keys", "rows", "cursor", "width",
    )

    def __init__(self, rx_radios, rx_ids, mw, mw_arr, noise_mw, culled):
        self.rx_radios: List["Radio"] = rx_radios
        self.rx_ids: List[int] = rx_ids
        self.mw: List[float] = mw
        self.mw_arr = mw_arr
        self.noise_mw = noise_mw
        self.noise_list: List[float] = noise_mw.tolist()
        self.culled: int = culled
        #: ``(tx_id, rx_id)`` per survivor; None unless the draw matrix is on.
        self.keys: Optional[List[Tuple[int, int]]] = None
        #: Per-draw received-power lists (``width`` rows of ``n_links``
        #: python floats); None when the draw matrix is unused.
        self.rows: Optional[List[List[float]]] = None
        self.cursor: int = 0
        self.width: int = 0


class VectorBackend:
    """Array-of-links evaluation engine bolted onto one :class:`Channel`.

    The channel remains the owner of topology, traces, counters, and the
    transmission list; radios remain the single source of truth for all
    reception state.  The backend holds only derived, rebuildable data:
    slot arrays snapshotting per-radio thresholds (radio configs are
    fixed after attach, as :class:`Radio` itself assumes when caching
    its mW thresholds), per-sender mean rows, and per-link draw buffers.

    Draw buffers are **never** discarded: a refill advances the shared
    substream generator past the buffered values, so dropping a buffer
    would skip draws and diverge from the scalar sequence.  Buffers are
    keyed by ``(tx_id, rx_id)`` and survive mobility, detach, and
    re-attach — exactly like the generators themselves, which
    ``RngStreams.substream`` memoizes for the run's lifetime.
    """

    def __init__(self, channel: "Channel") -> None:
        _require_numpy()
        # Bind the collaborator classes/helpers once: the channel module
        # is fully imported by construction time (a Channel instance
        # exists), so this avoids both an import cycle at module load
        # and the per-call import-machinery lookups a function-level
        # import would cost on the transmit path.
        from repro.phy.channel import Transmission
        from repro.phy.radio import _ReceptionLock
        from repro.phy.rates import rate_constants

        self._transmission_cls = Transmission
        self._lock_cls = _ReceptionLock
        self._rate_constants = rate_constants
        # Last (rate, (sens_mw, thr_ratio)) pair: consecutive frames
        # almost always share a rate object (tables intern them), and an
        # identity check dodges the dataclass-hash cost of the per-rate
        # lru caches on the hot path.
        self._last_rate: Optional[tuple] = None
        self.channel = channel
        #: Frames evaluated through the vector path (``channel/vector_batches``).
        self.batches = 0
        #: Surviving (non-culled) receiver evaluations (``channel/vector_links``).
        self.links = 0
        self._slot_of: Dict[int, int] = {}
        #: Attach-order snapshot of the channel's radios, refreshed by
        #: :meth:`rebuild`: dense rows index radios by slot, so they
        #: need a positional list, which the channel no longer keeps
        #: (its store is the insertion-ordered id dict).
        self._radio_list: List["Radio"] = []
        self._noise_dbm = np.empty(0, dtype=np.float64)
        self._cs_dbm = np.empty(0, dtype=np.float64)
        self._noise_mw = np.empty(0, dtype=np.float64)
        self._rows: Dict[int, _MeanRow] = {}
        #: Sparse mode (channel spatial index active): per-sender plans
        #: stamped ``(grid_version, tx_power_dbm, plan)``, validated
        #: lazily against the grid instead of eagerly invalidated.
        self._sparse = channel.spatial_active
        self._sparse_plans: Dict[int, Tuple[int, float, _SenderPlan]] = {}
        self._draws: Dict[Tuple[int, int], list] = {}
        #: In-flight transmissions' receiver lists (set at transmit,
        #: popped at end-of-air): end delivery walks the same radio
        #: objects start delivery used instead of re-resolving each
        #: receiver id through the channel's id map.  Order matches
        #: ``tx.rx_power_mw`` insertion order, i.e. attach order.
        self._rx_of: Dict["Transmission", List["Radio"]] = {}
        self.rebuild()

    # ------------------------------------------------------------------
    # Topology hooks (called by Channel.attach / detach / on_radio_moved)
    # ------------------------------------------------------------------
    def rebuild(self) -> None:
        """Re-snapshot slot arrays from the channel's attach-order list.

        Attach/detach are rare relative to frames, so a full rebuild
        (and dropping every mean row) is the simplest way to keep slot
        indices aligned with the scalar path's iteration order.  Draw
        buffers are deliberately kept — see the class docstring.
        """
        radios = list(self.channel.radios_view())
        self._radio_list = radios
        self._slot_of = {r.radio_id: i for i, r in enumerate(radios)}
        self._noise_dbm = np.array(
            [r.config.noise_floor_dbm for r in radios], dtype=np.float64
        )
        self._cs_dbm = np.array(
            [r.config.cs_threshold_dbm for r in radios], dtype=np.float64
        )
        self._noise_mw = np.array([r._noise_mw for r in radios], dtype=np.float64)
        for row in self._rows.values():
            if row.plan is not None:
                self._retire_plan(row.plan)
        self._rows.clear()
        self._drop_sparse_plans()

    def on_radio_moved(self, radio_id: int) -> None:
        """Position-dependent invalidation, mirroring the pair caches.

        Drops the moved radio's own row and marks its column invalid in
        every other sender's row — O(number of senders), matching the
        O(degree) discipline of ``_PairCache.invalidate``.
        """
        if self._sparse:
            # The mover's own plan dies here (its means encode the old
            # position / power).  Every *other* sender's plan is stamped
            # with the grid version, which a real move just bumped, so
            # they invalidate themselves lazily at next use — O(1) per
            # move instead of a walk.  A power change doesn't bump the
            # version, and deliberately so: other senders' plans don't
            # depend on this radio's transmit power (its receive
            # thresholds are what they cull against, and those are
            # fixed after attach).
            state = self._sparse_plans.pop(radio_id, None)
            if state is not None:
                self._retire_plan(state[2])
            return
        own = self._rows.pop(radio_id, None)
        if own is not None and own.plan is not None:
            self._retire_plan(own.plan)
        slot = self._slot_of.get(radio_id)
        if slot is None:
            return
        for row in self._rows.values():
            row.valid[slot] = False
            if row.plan is not None:
                self._retire_plan(row.plan)
                row.plan = None

    def _drop_sparse_plans(self) -> None:
        """Retire and forget every sparse plan (topology changed)."""
        if self._sparse_plans:
            for state in self._sparse_plans.values():
                self._retire_plan(state[2])
            self._sparse_plans.clear()

    # ------------------------------------------------------------------
    # Mean-power rows
    # ------------------------------------------------------------------
    def _row(self, sender: "Radio") -> _MeanRow:
        """The sender's mean row, filling invalid slots via scalar math."""
        n = len(self._slot_of)
        row = self._rows.get(sender.radio_id)
        if row is None:
            row = _MeanRow(n)
            self._rows[sender.radio_id] = row
        if not row.valid.all():
            if row.plan is not None:  # defensive: invalidation nulls plans
                self._retire_plan(row.plan)
                row.plan = None
            radios = self._radio_list
            propagation = self.channel.propagation
            tx_power = sender.config.tx_power_dbm
            position = sender.position
            mw_list = row.mw_list
            for i in np.flatnonzero(~row.valid).tolist():
                other = radios[i]
                if other is sender:
                    # Own slot: +inf keeps the cull comparison inert; the
                    # sender is excluded from the survivor set explicitly.
                    row.dbm[i] = math.inf
                    row.mw[i] = math.inf
                    mw_list[i] = math.inf
                else:
                    mean_dbm = propagation.mean_rx_dbm(
                        tx_power, position.distance_to(other.position)
                    )
                    mean_mw = dbm_to_mw(mean_dbm)
                    row.dbm[i] = mean_dbm
                    row.mw[i] = mean_mw
                    mw_list[i] = mean_mw
                row.valid[i] = True
        return row

    def _plan(self, sender: "Radio") -> _SenderPlan:
        """The sender's survivor plan, rebuilt when its row changed.

        The cull test is the scalar path's, computed as one vector
        comparison over the row: skip a receiver iff ``mean + margin``
        sits below both its noise floor and its carrier-sense threshold
        (float64 add/compare are IEEE-exact matches of the python-float
        expressions).  The sender never receives its own frame.
        """
        if self._sparse:
            return self._sparse_plan(sender)
        row = self._rows.get(sender.radio_id)
        if row is not None:
            # Fast path: a non-None plan implies the row is fully valid
            # (every invalidation nulls the plan), so skip the per-slot
            # validity reduction entirely.
            plan = row.plan
            if plan is not None:
                return plan
        row = self._row(sender)
        ch = self.channel
        n = len(self._slot_of)
        margin = ch.cull_margin_db
        if margin is None:
            keep = np.ones(n, dtype=bool)
        else:
            shifted = row.dbm + margin
            keep = (shifted >= self._noise_dbm) | (shifted >= self._cs_dbm)
        keep[self._slot_of[sender.radio_id]] = False
        survivors = np.flatnonzero(keep)
        radios = self._radio_list
        mw_list = row.mw_list
        idx = survivors.tolist()
        rx_radios = [radios[i] for i in idx]
        plan = _SenderPlan(
            rx_radios=rx_radios,
            rx_ids=[r.radio_id for r in rx_radios],
            mw=[mw_list[i] for i in idx],
            mw_arr=row.mw[survivors],
            noise_mw=self._noise_mw[survivors],
            culled=(n - 1) - len(idx),
        )
        if (
            rx_radios
            and ch.shadowing_mode == "per_frame"
            and ch.propagation.sigma_db > 0.0
        ):
            self._build_draw_matrix(plan, sender.radio_id)
        row.plan = plan
        return plan

    def _sparse_plan(self, sender: "Radio") -> _SenderPlan:
        """The sender's plan over its grid candidate set (spatial mode).

        Means, cull test, and survivor ordering are the scalar path's:
        candidates arrive attach-order sorted from
        :meth:`Channel._spatial_candidates` (a provable superset of the
        cull survivors), means are filled through the exact scalar
        expressions, and the vector cull comparison keeps exactly the
        receivers the per-radio test keeps — so the survivor list, its
        order, and ``plan.culled`` (grid-skipped + cull-rejected, i.e.
        ``n_attached - 1 - survivors``) match the exhaustive sweep.
        Validity is ``(grid version, tx power)``: any attach / detach /
        move bumps the version, invalidating every sender's plan in
        O(1); the superseded plan retires its draw cursor first so the
        substream consumption order never diverges.
        """
        ch = self.channel
        grid = ch._spatial or ch._ensure_spatial()
        sender_id = sender.radio_id
        power = sender.config.tx_power_dbm
        state = self._sparse_plans.get(sender_id)
        if state is not None:
            if state[0] == grid.version and state[1] == power:
                return state[2]
            self._retire_plan(state[2])
        candidates = ch._spatial_candidates(sender)
        propagation = ch.propagation
        position = sender.position
        k = len(candidates)
        ch.spatial_skipped += (len(ch._radios_by_id) - 1) - k
        dbm = np.empty(k, dtype=np.float64)
        mw_list = [0.0] * k
        for i, other in enumerate(candidates):
            mean_dbm = propagation.mean_rx_dbm(
                power, position.distance_to(other.position)
            )
            dbm[i] = mean_dbm
            mw_list[i] = dbm_to_mw(mean_dbm)
        # Spatial mode requires an active margin (Channel gates on it).
        shifted = dbm + ch.cull_margin_db
        noise_dbm = np.array(
            [r.config.noise_floor_dbm for r in candidates], dtype=np.float64
        )
        cs_dbm = np.array(
            [r.config.cs_threshold_dbm for r in candidates], dtype=np.float64
        )
        keep = (shifted >= noise_dbm) | (shifted >= cs_dbm)
        idx = np.flatnonzero(keep).tolist()
        rx_radios = [candidates[i] for i in idx]
        plan = _SenderPlan(
            rx_radios=rx_radios,
            rx_ids=[r.radio_id for r in rx_radios],
            mw=[mw_list[i] for i in idx],
            mw_arr=np.array([mw_list[i] for i in idx], dtype=np.float64),
            noise_mw=np.array([r._noise_mw for r in rx_radios], dtype=np.float64),
            culled=(len(ch._radios_by_id) - 1) - len(rx_radios),
        )
        if (
            rx_radios
            and ch.shadowing_mode == "per_frame"
            and propagation.sigma_db > 0.0
        ):
            self._build_draw_matrix(plan, sender_id)
        self._sparse_plans[sender_id] = (grid.version, power, plan)
        return plan

    # ------------------------------------------------------------------
    # Shadowing draw buffers and plan draw matrices
    # ------------------------------------------------------------------
    def _build_draw_matrix(self, plan: _SenderPlan, tx_id: int) -> None:
        """Align every survivor link's pending draws into one matrix.

        Each link's buffered-but-unconsumed draws are topped up — with
        *committed* draws from that link's own substream — to a common
        ``width``, then laid out column-per-link so draw index ``j`` of
        every link is row ``j`` of ``plan.ratios``.  Block partitioning
        is draw-invisible (see :data:`DRAW_CHUNK`), so the top-up sizes
        may differ per link without perturbing any link's sequence.
        Ratios are the scalar path's ``db_to_ratio`` — python ``10 **``
        per draw; numpy's pow differs in the last ULP and is never used
        here — and storing them into a float64 array is value-exact.
        """
        ch = self.channel
        prop = ch.propagation
        keys = [(tx_id, rx_id) for rx_id in plan.rx_ids]
        entries = [self._draws.setdefault(key, [[], 0]) for key in keys]
        pendings = [entry[0][entry[1]:] for entry in entries]
        width = max(INITIAL_DRAW_CHUNK, max(len(p) for p in pendings))
        for key, entry, pending in zip(keys, entries, pendings):
            need = width - len(pending)
            if need > 0:
                pending = pending + prop.shadowing_block(
                    ch._link_rng(key[0], key[1]), need
                ).tolist()
            entry[0] = pending
            entry[1] = 0
        plan.keys = keys
        ratio_mat = np.array(
            [
                [10.0 ** (entry[0][j] / 10.0) for entry in entries]
                for j in range(width)
            ],
            dtype=np.float64,
        )
        plan.rows = (plan.mw_arr * ratio_mat).tolist()
        plan.cursor = 0
        plan.width = width

    def _refill_plan(self, plan: _SenderPlan) -> None:
        """Every link of an exhausted plan pulls a fresh block.

        Widths double per refill up to :data:`DRAW_CHUNK`, so a plan
        that serves only a few frames never commits — or pays the
        ratio-pow and matrix-assembly cost for — a full-width window,
        while long-lived plans amortize toward the cap.
        """
        ch = self.channel
        prop = ch.propagation
        width = plan.width * 2
        if width > DRAW_CHUNK:
            width = DRAW_CHUNK
        cols = []
        for key in plan.keys:
            offsets = prop.shadowing_block(
                ch._link_rng(key[0], key[1]), width
            ).tolist()
            entry = self._draws[key]
            entry[0] = offsets
            entry[1] = 0
            cols.append([10.0 ** (x / 10.0) for x in offsets])
        ratio_mat = np.array(cols, dtype=np.float64).T
        plan.rows = (plan.mw_arr * ratio_mat).tolist()
        plan.cursor = 0
        plan.width = width

    def _retire_plan(self, plan: _SenderPlan) -> None:
        """Write a dying plan's draw consumption back to the buffers.

        The per-link entries already hold the plan's full draw window
        (``_build_draw_matrix`` / ``_refill_plan`` store the offsets
        there with position 0), so retirement just records how many
        were consumed.  No draw is ever skipped or re-read: the next
        consumer — a successor plan or :meth:`_next_offset` — continues
        exactly where the scalar path would be.
        """
        if plan.rows is None:
            return
        cursor = plan.cursor
        if cursor:
            draws = self._draws
            for key in plan.keys:
                draws[key][1] = cursor
        plan.rows = None

    def _next_offset(self, tx_id: int, rx_id: int) -> float:
        """The link's next shadowing draw, from its buffered block.

        Identical to ``propagation.shadowing_db(channel._link_rng(...))``
        on the scalar path: blocks are filled from the same memoized
        substream generator, and an array fill consumes the bit stream
        exactly as sequential scalar draws would.  Live plans are
        retired first so their matrix cursors are flushed into the
        shared buffers before this reads them.
        """
        for row in self._rows.values():
            if row.plan is not None:
                self._retire_plan(row.plan)
                row.plan = None
        self._drop_sparse_plans()
        entry = self._draws.setdefault((tx_id, rx_id), [[], 0])
        pos = entry[1]
        if pos >= len(entry[0]):
            entry[0] = self.channel.propagation.shadowing_block(
                self.channel._link_rng(tx_id, rx_id), DRAW_CHUNK
            ).tolist()
            pos = 0
        entry[1] = pos + 1
        return entry[0][pos]

    # ------------------------------------------------------------------
    # Transmit path (replaces Channel.transmit's receiver loop)
    # ------------------------------------------------------------------
    def transmit(self, sender: "Radio", frame: "Frame") -> "Transmission":
        """Vectorized counterpart of :meth:`Channel.transmit`."""
        ch = self.channel
        sim = ch.sim
        duration = ch.timing.frame_airtime_ns(frame)
        tx = self._transmission_cls(frame, sender, sim.now, sim.now + duration)
        ch._active.append(tx)
        ch.frames_sent += 1
        self.batches += 1

        plan = self._plan(sender)
        rx_radios = plan.rx_radios
        rx_ids = plan.rx_ids
        rx_power = tx.rx_power_mw
        rows = plan.rows
        if rows is not None:
            # per_frame with shadowing: powers were composed in bulk at
            # matrix build time (one broadcast multiply of the cached
            # means by the ratio matrix — IEEE-exact per element, the
            # scalar ``mean_mw * db_to_ratio(offset)``), so a frame
            # costs one list index.
            j = plan.cursor
            if j >= plan.width:
                self._refill_plan(plan)  # rebinds plan.rows
                rows = plan.rows
                j = 0
            plan.cursor = j + 1
            powers = rows[j]
            rx_power.update(zip(rx_ids, powers))
        elif ch.shadowing_mode == "per_link":
            powers = []
            for k, rx_id in enumerate(rx_ids):
                power = ch._received_power_mw(sender, rx_radios[k], frame)
                rx_power[rx_id] = power
                powers.append(power)
        else:
            # "none", or degenerate per_frame with sigma == 0 (the scalar
            # path draws no offset and multiplies by ratio(0) == 1.0).
            powers = plan.mw
            rx_power.update(zip(rx_ids, powers))
        self.links += len(rx_radios)
        self._rx_of[tx] = rx_radios

        latency = ch.air_latency_ns
        if rx_radios:
            rate = frame.rate
            last = self._last_rate
            if last is not None and last[0] is rate:
                sens_mw, thr_ratio = last[1]
            else:
                sens_mw, thr_ratio = consts = self._rate_constants(rate)
                self._last_rate = (rate, consts)
            embed = bool(frame.meta.get("embedded_announce"))
            if not latency:
                self.deliver_air_start(
                    tx, rx_radios, powers, sens_mw, thr_ratio, embed
                )
            else:
                sim.schedule(
                    latency, self.deliver_air_start, tx, rx_radios, powers,
                    sens_mw, thr_ratio, embed,
                )
        culled = plan.culled
        ch.links_culled += culled
        if ch.trace.wants("channel"):
            ch.trace.record(
                "channel", "tx-start",
                frame=frame.describe(), sender=sender.radio_id, culled=culled,
            )
        sim.schedule(duration, ch._end_transmission, tx)
        return tx

    # ------------------------------------------------------------------
    # Batch delivery (inlined mirrors of Radio.on_air_start / on_air_end;
    # see the sync-contract note in repro/phy/radio.py)
    # ------------------------------------------------------------------
    def deliver_air_start(
        self,
        tx: "Transmission",
        rx_radios: List["Radio"],
        powers: List[float],
        sens_mw: float,
        thr_ratio: float,
        embed: bool,
    ) -> None:
        """Start-of-air for every receiver of one frame, in attach order.

        Field-for-field mirror of :meth:`Radio.on_air_start` with the
        frame constants hoisted.  The decode precondition is the same
        exact float compare the scalar radio performs
        (``power >= sensitivity``), evaluated inline; the detect
        compare (``power >= noise_floor``) runs lazily, only on the
        rare idle-but-undecodable branch.  The energy memo is brought
        clean *before* the append, so ``cache + power`` equals the
        ordered dict sum the scalar memo would recompute —
        bit-identical, including across removals (which force a full
        ordered recompute either way).
        """
        _ReceptionLock = self._lock_cls
        for radio, power in zip(rx_radios, powers):
            if not radio._attached:
                continue  # delivery raced a detach
            in_air = radio._in_air
            if radio._hotpath:
                if radio._energy_dirty:
                    radio._energy_cache = (
                        sum(in_air.values()) if in_air else 0.0
                    )
                in_air[tx] = power
                energy = radio._energy_cache + power
                radio._energy_cache = energy
                radio._energy_dirty = False
            else:
                in_air[tx] = power
                energy = sum(in_air.values())
            if radio._current_tx is None:
                lock = radio._lock
                if lock is None:
                    if power >= sens_mw:
                        lock = _ReceptionLock(tx, power, energy - power)
                        radio._lock = lock
                        if embed:
                            radio._maybe_schedule_embedded_decode(lock)
                    elif power >= radio._noise_mw:
                        radio.frames_missed += 1
                elif (
                    radio.config.capture
                    and power >= sens_mw
                    and power / (energy - power + radio._noise_mw) >= thr_ratio
                ):
                    radio.frames_missed += 1
                    lock = _ReceptionLock(tx, power, energy - power)
                    radio._lock = lock
                    if embed:
                        radio._maybe_schedule_embedded_decode(lock)
                else:
                    interference = energy - lock.signal_mw
                    if interference > lock.max_interference_mw:
                        lock.max_interference_mw = interference
            # While transmitting the radio is deaf (energy still counts).
            busy = (
                radio._current_tx is not None
                or energy >= radio._cs_threshold_mw
            )
            if busy != radio._busy:
                radio._busy = busy
                mac = radio.mac
                if mac is not None:
                    if busy:
                        mac.on_medium_busy()
                    else:
                        mac.on_medium_idle()
            cb = radio._energy_cb
            if cb is not None:
                cb(energy)

    def deliver_air_end(self, tx: "Transmission") -> None:
        """End-of-air for every observer of ``tx``, in attach order.

        Mirror of :meth:`Radio.on_air_end`.  The post-removal energy is
        a full ordered recompute (``Radio.energy_mw``) — incremental
        subtraction is *not* float-associative-safe, so it is never
        used.  The receiver list is the one captured at transmit time
        (same objects, same order as ``tx.rx_power_mw``); a radio that
        detached mid-air is skipped by its ``_attached`` flag, exactly
        as the id-map lookup used to skip it.
        """
        rx_radios = self._rx_of.pop(tx, None)
        if rx_radios is None:
            return
        for radio in rx_radios:
            if not radio._attached:
                continue  # detached radios never hear the end
            in_air = radio._in_air
            in_air.pop(tx, None)
            radio._energy_dirty = True
            lock = radio._lock
            if lock is not None and lock.tx is tx:
                radio._lock = None
                radio._finish_reception(lock)
            # Inline Radio.energy_mw: the post-removal sum is always a
            # full ordered recompute (incremental subtraction is not
            # float-associative-safe); memoize it for the hot path.
            energy = sum(in_air.values()) if in_air else 0.0
            if radio._hotpath:
                radio._energy_cache = energy
                radio._energy_dirty = False
            busy = (
                radio._current_tx is not None
                or energy >= radio._cs_threshold_mw
            )
            if busy != radio._busy:
                radio._busy = busy
                mac = radio.mac
                if mac is not None:
                    if busy:
                        mac.on_medium_busy()
                    else:
                        mac.on_medium_idle()
            cb = radio._energy_cb
            if cb is not None:
                cb(energy)
