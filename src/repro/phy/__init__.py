"""Physical layer: radio propagation, packet-reception model, rates, medium.

This package implements the paper's Section IV-B machinery:

* :mod:`repro.phy.propagation` — the log-normal shadowing model (eq. 1),
  with the free-space Friis equation supplying the reference power.
* :mod:`repro.phy.prr` — the closed-form Packet Reception Rate model
  (eqs. 2-3) and the carrier-sense-miss probability (eq. 4).
* :mod:`repro.phy.rates` — 802.11 bit-rate tables with per-rate SIR
  thresholds and receiver sensitivities.
* :mod:`repro.phy.channel` / :mod:`repro.phy.radio` — the simulated
  medium: energy-based clear-channel assessment and SIR-based reception
  with interference tracking.
"""

from repro.phy.propagation import FreeSpaceReference, LogNormalShadowing
from repro.phy.prr import PrrModel
from repro.phy.rates import Rate, RateTable, DSSS_RATES, OFDM_RATES
from repro.phy.channel import Channel, Transmission
from repro.phy.radio import Radio, RadioConfig

__all__ = [
    "FreeSpaceReference",
    "LogNormalShadowing",
    "PrrModel",
    "Rate",
    "RateTable",
    "DSSS_RATES",
    "OFDM_RATES",
    "Channel",
    "Transmission",
    "Radio",
    "RadioConfig",
]
