"""Closed-form reception models: eqs. (2), (3) and (4) of the paper.

These are the analytical counterparts of what the simulated radios do
empirically.  CO-MAP nodes evaluate them on *positions* (from the neighbor
table) to predict whether two links can co-occur and which neighbors are
hidden terminals — without any trial transmissions.

Equation (3)::

    PRR = 1 - Phi( (T_SIR + 10 alpha log10(d / r)) / (sqrt(2) sigma) )

where ``d`` is the sender→receiver distance of the link under test, ``r``
the interferer→receiver distance, ``T_SIR`` the required
signal-to-interference ratio in dB, and ``Phi`` the standard normal CDF.
The ``sqrt(2) sigma`` arises because the useful and interfering shadowing
terms are independent N(0, sigma²) variables, so their difference is
N(0, 2 sigma²).

Equation (4)::

    Pr{P_r < T_cs} = Phi( (T_cs - P_d0 + 10 alpha log10(r / d0)) / sigma )

the probability that a neighbor at distance ``r`` from a sender *fails* to
carrier-sense that sender — monotonically increasing in ``r``.  The paper
declares a node a hidden terminal when this probability exceeds 0.9.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.phy.propagation import LogNormalShadowing


def _standard_normal_cdf(x: float) -> float:
    """Phi(x) via the error function (no scipy needed on this hot path)."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def _standard_normal_cdf_batch(x):
    """Vectorized Phi over a numpy array.

    ``scipy.special.erf`` is imported lazily so the scalar hot path keeps
    its no-scipy property.  SIMD ``erf`` can differ from ``math.erf`` in
    the last ULP, so batch results agree with the scalar model to
    ``allclose`` precision, not bit-for-bit (documented in
    ``docs/simulator.md``; pinned by ``tests/test_vector_kernel.py``).
    """
    from scipy.special import erf

    return 0.5 * (1.0 + erf(x / math.sqrt(2.0)))


@dataclass(frozen=True)
class PrrModel:
    """Packet-reception and carrier-sense probability calculator.

    Parameters
    ----------
    propagation:
        The :class:`LogNormalShadowing` instance shared with the simulated
        channel, so analytical predictions and simulated outcomes use the
        same ``alpha``/``sigma``/reference loss.
    t_sir_db:
        Required signal-to-interference ratio ``T_SIR`` in dB.  The paper
        uses the threshold of the *lowest* data rate (4 dB for 1 Mbps
        802.11b on the testbed; 10 for the NS-2 runs) so concurrency
        decisions stay safe under rate adaptation.
    """

    propagation: LogNormalShadowing
    t_sir_db: float

    def prr(self, link_distance_m: float, interferer_distance_m: float) -> float:
        """Eq. (3): reception probability of a link under one interferer.

        ``link_distance_m`` is sender→receiver (``d``);
        ``interferer_distance_m`` is interferer→receiver (``r``).
        Both transmitters are assumed to use the same power, as in the
        paper's derivation.
        """
        if link_distance_m <= 0.0:
            raise ValueError("link distance must be positive")
        if interferer_distance_m <= 0.0:
            raise ValueError("interferer distance must be positive")
        sigma = self.propagation.sigma_db
        alpha = self.propagation.alpha
        margin = self.t_sir_db + 10.0 * alpha * math.log10(
            link_distance_m / interferer_distance_m
        )
        if sigma == 0.0:
            # Degenerate (no shadowing): step function on the SIR margin.
            return 0.0 if margin >= 0.0 else 1.0
        return 1.0 - _standard_normal_cdf(margin / (math.sqrt(2.0) * sigma))

    def prr_batch(self, link_distances_m, interferer_distances_m):
        """Eq. (3) over aligned arrays of link/interferer distances.

        The array counterpart of :meth:`prr` for sweeps over many links
        at once (analytics, CO-MAP what-if scans).  Agreement with the
        scalar model is ``allclose``-level, not bit-identical — see
        :func:`_standard_normal_cdf_batch`.
        """
        import numpy as np

        d = np.asarray(link_distances_m, dtype=np.float64)
        r = np.asarray(interferer_distances_m, dtype=np.float64)
        if np.any(d <= 0.0) or np.any(r <= 0.0):
            raise ValueError("distances must be positive")
        sigma = self.propagation.sigma_db
        alpha = self.propagation.alpha
        margin = self.t_sir_db + 10.0 * alpha * np.log10(d / r)
        if sigma == 0.0:
            return np.where(margin >= 0.0, 0.0, 1.0)
        return 1.0 - _standard_normal_cdf_batch(margin / (math.sqrt(2.0) * sigma))

    def carrier_sense_miss_batch(self, distances_m, tx_power_dbm, t_cs_dbm):
        """Eq. (4) over an array of distances (array analogue of
        :meth:`carrier_sense_miss_probability`; ``allclose``-level)."""
        import numpy as np

        r = np.asarray(distances_m, dtype=np.float64)
        if np.any(r <= 0.0):
            raise ValueError("distances must be positive")
        sigma = self.propagation.sigma_db
        mean_rx = self.propagation.mean_rx_dbm_batch(tx_power_dbm, r)
        if sigma == 0.0:
            return np.where(mean_rx < t_cs_dbm, 1.0, 0.0)
        return _standard_normal_cdf_batch((t_cs_dbm - mean_rx) / sigma)

    def effective_interferer_distance(self, interferer_distances_m) -> float:
        """Collapse several interferers into one equivalent distance.

        The paper's analysis "mainly focuses on scenarios with one
        interferer; the aggregated impact of multiple HTs and ETs will be
        handled in future works".  This extension aggregates mean
        interference powers in the linear domain: with path loss
        ``r^-alpha``, the combined power of interferers at distances
        ``r_i`` equals a single interferer at

            r_eff = (sum_i r_i^(-alpha))^(-1/alpha)

        which always satisfies ``r_eff <= min(r_i)`` (more interferers,
        closer equivalent).  Shadowing of the aggregate is approximated
        by the single-interferer sigma (a first-order Wilkinson-style
        approximation).
        """
        distances = [float(r) for r in interferer_distances_m]
        if not distances:
            raise ValueError("at least one interferer distance is required")
        if any(r <= 0.0 for r in distances):
            raise ValueError("interferer distances must be positive")
        alpha = self.propagation.alpha
        aggregate = sum(r ** (-alpha) for r in distances)
        return aggregate ** (-1.0 / alpha)

    def prr_multi(self, link_distance_m: float, interferer_distances_m) -> float:
        """Eq. (3) generalized to several simultaneous interferers."""
        r_eff = self.effective_interferer_distance(interferer_distances_m)
        return self.prr(link_distance_m, r_eff)

    def carrier_sense_miss_probability(
        self,
        distance_m: float,
        tx_power_dbm: float,
        t_cs_dbm: float,
    ) -> float:
        """Eq. (4): probability a neighbor at ``distance_m`` cannot sense us.

        ``t_cs_dbm`` is the clear-channel-assessment threshold.  The result
        grows monotonically with distance (verified by property tests).
        """
        if distance_m <= 0.0:
            raise ValueError("distance must be positive")
        sigma = self.propagation.sigma_db
        mean_rx = self.propagation.mean_rx_dbm(tx_power_dbm, distance_m)
        if sigma == 0.0:
            return 1.0 if mean_rx < t_cs_dbm else 0.0
        return _standard_normal_cdf((t_cs_dbm - mean_rx) / sigma)

    def interference_range(
        self, link_distance_m: float, prr_floor: float = 0.5
    ) -> float:
        """Distance inside which an interferer pushes the link PRR below
        ``prr_floor``.

        Solves eq. (3) for ``r``; used to size the 2-hop neighborhood a
        node must know about (Section V: ``R_t + R_in``).
        """
        if not 0.0 < prr_floor < 1.0:
            raise ValueError("prr_floor must lie strictly between 0 and 1")
        sigma = self.propagation.sigma_db
        alpha = self.propagation.alpha
        if sigma == 0.0:
            # PRR is a step at margin == 0.
            exponent = self.t_sir_db / (10.0 * alpha)
        else:
            # 1 - Phi(m / (sqrt(2) sigma)) = prr_floor  =>  m = sqrt(2) sigma z
            z = _inverse_standard_normal_cdf(1.0 - prr_floor)
            margin = math.sqrt(2.0) * sigma * z
            exponent = (self.t_sir_db - margin) / (10.0 * alpha)
        return link_distance_m * 10.0**exponent


def _inverse_standard_normal_cdf(p: float) -> float:
    """Phi^-1(p) via bisection on the well-behaved CDF (|z| <= 12)."""
    if not 0.0 < p < 1.0:
        raise ValueError("p must lie strictly between 0 and 1")
    lo, hi = -12.0, 12.0
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if _standard_normal_cdf(mid) < p:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)
