"""802.11 bit rates with per-rate SIR thresholds and sensitivities.

The paper's testbed runs 802.11b/g hardware (Intel 4965AGN) with DSSS
rates 1-11 Mbps; the NS-2 evaluation fixes the data rate at 6 Mbps
(HR/DSSS PHY, 2.4 GHz).  Two standard rate tables are provided:

* :data:`DSSS_RATES` — 802.11b (1, 2, 5.5, 11 Mbps).  The SIR thresholds
  follow the paper's statement that "the minimum SINRs of 802.11b are
  normally 10 dB for 11 Mbps down to 4 dB for 1 Mbps".
* :data:`OFDM_RATES` — 802.11a/g (6-54 Mbps) with textbook thresholds.

Minstrel-style rate adaptation (:mod:`repro.mac.rate_control`) walks these
tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Sequence, Tuple


@dataclass(frozen=True)
class Rate:
    """One modulation/coding point.

    Attributes
    ----------
    bps:
        Data bit rate in bits per second.
    sir_threshold_db:
        Minimum signal-to-interference(+noise) ratio for successful
        decoding at this rate.
    sensitivity_dbm:
        Minimum received power to lock onto a frame at this rate.
    """

    bps: int
    sir_threshold_db: float
    sensitivity_dbm: float

    @property
    def mbps(self) -> float:
        """Bit rate in Mbit/s (cosmetic)."""
        return self.bps / 1e6

    def airtime_ns(self, payload_bytes: int) -> int:
        """Nanoseconds to clock out ``payload_bytes`` at this rate."""
        if payload_bytes < 0:
            raise ValueError("payload size cannot be negative")
        return int(round(payload_bytes * 8 * 1e9 / self.bps))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mbps:g}Mbps"


@lru_cache(maxsize=None)
def sensitivity_mw(rate: Rate) -> float:
    """``rate.sensitivity_dbm`` converted to mW, cached per rate.

    The expression is exactly :func:`repro.util.units.dbm_to_mw`; rates
    are frozen, so caching the conversion cannot change the value — the
    *cache, never re-derive* discipline of the frame hot path.
    """
    return 10.0 ** (rate.sensitivity_dbm / 10.0)


@lru_cache(maxsize=None)
def sir_threshold_ratio(rate: Rate) -> float:
    """``rate.sir_threshold_db`` as a linear power ratio, cached per rate.

    Exactly :func:`repro.util.units.db_to_ratio` of the threshold.
    """
    return 10.0 ** (rate.sir_threshold_db / 10.0)


@lru_cache(maxsize=None)
def rate_constants(rate: Rate) -> Tuple[float, float]:
    """``(sensitivity_mw, sir_threshold_ratio)`` for ``rate``, cached.

    One lookup instead of two on the per-frame path: the vector channel
    backend fetches both linear-domain constants for the frame's rate
    before sweeping the receiver arrays.  Values come from the cached
    scalar helpers, so they are bit-identical to the scalar path's.
    """
    return sensitivity_mw(rate), sir_threshold_ratio(rate)


class RateTable:
    """An ordered set of rates (slowest first) with lookup helpers."""

    def __init__(self, rates: Sequence[Rate]) -> None:
        if not rates:
            raise ValueError("a rate table needs at least one rate")
        ordered = sorted(rates, key=lambda r: r.bps)
        if len({r.bps for r in ordered}) != len(ordered):
            raise ValueError("duplicate bit rates in table")
        self._rates: Tuple[Rate, ...] = tuple(ordered)
        self._by_bps: Dict[int, Rate] = {r.bps: r for r in ordered}

    @property
    def rates(self) -> Tuple[Rate, ...]:
        """All rates, slowest first."""
        return self._rates

    @property
    def base(self) -> Rate:
        """The most robust (slowest) rate — used for ACKs and headers."""
        return self._rates[0]

    @property
    def top(self) -> Rate:
        """The fastest rate in the table."""
        return self._rates[-1]

    def by_bps(self, bps: int) -> Rate:
        """Exact-match lookup by bit rate."""
        try:
            return self._by_bps[bps]
        except KeyError:
            raise KeyError(f"no {bps} b/s rate in table: {self._rates}") from None

    def best_for_sir(self, sir_db: float) -> Rate:
        """The fastest rate whose threshold the given SIR satisfies.

        Falls back to the base rate if even that is not decodable — the
        caller decides whether the frame survives.
        """
        best = self._rates[0]
        for rate in self._rates:
            if sir_db >= rate.sir_threshold_db:
                best = rate
        return best

    def index_of(self, rate: Rate) -> int:
        """Position of ``rate`` in the slow→fast ordering."""
        return self._rates.index(rate)

    def __len__(self) -> int:
        return len(self._rates)

    def __iter__(self):
        return iter(self._rates)


#: 802.11b DSSS/CCK rates.  Thresholds span the paper's 4-10 dB range.
DSSS_RATES = RateTable(
    [
        Rate(bps=1_000_000, sir_threshold_db=4.0, sensitivity_dbm=-94.0),
        Rate(bps=2_000_000, sir_threshold_db=6.0, sensitivity_dbm=-91.0),
        Rate(bps=5_500_000, sir_threshold_db=8.0, sensitivity_dbm=-87.0),
        Rate(bps=11_000_000, sir_threshold_db=10.0, sensitivity_dbm=-82.0),
    ]
)

#: 802.11a/g OFDM rates with textbook SIR requirements.
OFDM_RATES = RateTable(
    [
        Rate(bps=6_000_000, sir_threshold_db=6.0, sensitivity_dbm=-90.0),
        Rate(bps=9_000_000, sir_threshold_db=7.8, sensitivity_dbm=-89.0),
        Rate(bps=12_000_000, sir_threshold_db=9.0, sensitivity_dbm=-87.0),
        Rate(bps=18_000_000, sir_threshold_db=10.8, sensitivity_dbm=-85.0),
        Rate(bps=24_000_000, sir_threshold_db=17.0, sensitivity_dbm=-82.0),
        Rate(bps=36_000_000, sir_threshold_db=18.8, sensitivity_dbm=-78.0),
        Rate(bps=48_000_000, sir_threshold_db=24.0, sensitivity_dbm=-74.0),
        Rate(bps=54_000_000, sir_threshold_db=24.6, sensitivity_dbm=-72.0),
    ]
)
