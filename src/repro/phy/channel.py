"""The shared wireless medium.

The :class:`Channel` owns the set of in-flight :class:`Transmission`\\ s.
When a radio starts transmitting, the channel draws a received power for
every other attached radio from the propagation model (one shadowing
realization per frame by default — this is what makes the simulated
packet-reception rate converge to the paper's eq. 3) and notifies each
radio, which updates its clear-channel assessment and reception state.

Shadowing modes
---------------

``per_frame``
    A fresh ``X_sigma`` per (transmitter, receiver, frame).  Default;
    realizes the statistical PRR model.
``per_link``
    One draw per ordered (transmitter, receiver) pair, fixed for the whole
    run.  Useful for deterministic unit tests and for studying stable
    topologies.
``none``
    Pure deterministic path loss.

Per-link RNG substreams
-----------------------

Shadowing draws come from a *per-(transmitter, receiver)* generator,
keyed through :meth:`repro.util.rng.RngStreams.substream` with the same
SHA-256 :func:`~repro.util.rng.derive_seed` derivation the parallel
sweep executor uses for task seeds.  Each ordered pair owns an
independent counter-based stream, so consuming (or *skipping*) draws on
one link can never perturb any other link's randomness.  That
independence is the precondition for below-floor culling: a culled
link's draw is simply never taken, and every other link still sees
exactly the sequence it would have seen in an exhaustive run.

Below-floor interference culling
--------------------------------

For every (sender, receiver) pair the channel caches the deterministic
mean received power (path loss only — invalidated per radio on
:meth:`repro.phy.radio.Radio.move_to`).  When that mean sits more than
``cull_margin_db`` below **both** the receiver's noise floor and its
carrier-sense threshold, the receiver is skipped entirely for that
frame: no shadowing draw, no ``rx_power_mw`` entry, and neither the
``on_air_start`` nor the ``on_air_end`` event is scheduled.  The margin
defaults to 6σ of the shadowing model (20 dB when σ = 0), can be set
explicitly via the ``REPRO_CULL_MARGIN_DB`` environment knob, and
``REPRO_CULL_MARGIN_DB=off`` restores the old exhaustive path.  Culled
notifications are counted in the ``channel/culled_links`` counter.

Spatial candidate generation (``REPRO_SPATIAL``)
------------------------------------------------

Culling skips the *work* for a below-floor receiver but still *visits*
every attached radio per frame.  With ``REPRO_SPATIAL=1`` (or the
``spatial`` constructor argument / ``ScenarioParams.spatial_index``) the
channel maintains a :class:`repro.phy.spatial.SpatialIndex` over
attached radios and sweeps only the radios inside the sender's *reach
radius* — the provably sound cull boundary derived by
:meth:`repro.phy.propagation.LogNormalShadowing.reach_radius_m` from
the sender's transmit power, the weakest ``min(noise_floor, T_cs)``
threshold ever attached to the band, and the culling margin.  Every
radio the grid skips would have failed the cull test, and every
candidate still runs the exact cull test, so per-node outcomes are
bit-identical to the exhaustive sweep; only the ``channel/spatial_*``
counters record the difference.  Candidates are re-sorted into attach
order before delivery, preserving the notification order contract.
Spatial mode requires an active culling margin — with
``cull_margin_db=None`` there is no sound radius, so the knob is inert
and the exhaustive loop runs unchanged.  The weakest threshold is never
relaxed on detach (a stale, lower value only enlarges the radius —
sound, and it keeps detach O(1)); per-radio configs are assumed fixed
after attach, except transmit power, which enters per-sender radii at
query time.

Linear-domain power caches (the frame hot path)
-----------------------------------------------

Surviving (sender, receiver) notifications dominate dense topologies
where nothing can be culled, and each one historically paid a
``10 ** (x / 10)`` per frame.  The pair cache therefore stores the
**linear-domain (mW)** mean power alongside the dB value, per-frame
shadowing composes as a single multiply
(``mean_mw * db_to_ratio(offset)``), and ``per_link`` mode caches the
fully-composed rx power per pair.  The discipline is *cache, never
re-derive*: every cached value is produced by exactly the expression
the uncached path evaluates, so results are bit-identical either way.
``REPRO_HOTPATH=off`` (sampled at channel construction; see
:mod:`repro.util.hotpath`) forces the full re-derivation path —
distance, ``math.log10`` path loss, and dBm→mW conversion per link per
frame — used by the equivalence tests and as the bench baseline.

The hot path also coalesces air notifications: a frame's per-receiver
``on_air_start`` (and ``on_air_end``) events all share one timestamp
and consecutive sequence numbers, so no other event can ever fire
between them — one engine event delivering all receivers in the same
order is exactly equivalent and cuts heap traffic from ``2N + 2`` to
4 events per frame.  Per-node outcomes are bit-identical either way
(``tests/test_hotpath_equivalence.py``); only ``events_fired`` and the
heap-pressure counters differ.
"""

from __future__ import annotations

import math
import os
from typing import (
    TYPE_CHECKING, Any, Dict, List, Optional, Set, Tuple, Union, ValuesView,
)

from repro.phy.propagation import LogNormalShadowing
from repro.phy.spatial import SpatialIndex, record_grid_built, record_reach_radius
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder
from repro.util.hotpath import hotpath_enabled, spatial_enabled, vector_enabled
from repro.util.rng import RngStreams
from repro.util.units import db_to_ratio, dbm_to_mw

if TYPE_CHECKING:  # avoid a phy <-> mac import cycle; hints only
    from repro.mac.frames import Frame
    from repro.mac.timing import PhyTiming
    from repro.phy.radio import Radio

#: Valid values for the channel's ``shadowing_mode``.
SHADOWING_MODES = ("per_frame", "per_link", "none")

#: Environment knob: culling margin in dB, or ``off`` for the exhaustive path.
CULL_MARGIN_ENV = "REPRO_CULL_MARGIN_DB"

#: Default margin as a multiple of the shadowing sigma.
CULL_SIGMA_FACTOR = 6.0

#: Default margin (dB) when the propagation model has no shadowing term.
#: With σ = 0 there is no randomness to guard against, but culled links
#: still drop their (deterministic) interference energy; 20 dB keeps each
#: culled contribution at ≤ 1 % of the receiver's noise floor.
CULL_DETERMINISTIC_MARGIN_DB = 20.0


def resolve_cull_margin_db(
    sigma_db: float, override: Union[float, str, None] = None
) -> Optional[float]:
    """Resolve the culling margin: explicit override > env knob > default.

    Returns the margin in dB, or ``None`` when culling is disabled
    (``"off"``, case-insensitive, or any negative value).  With no
    override and no ``REPRO_CULL_MARGIN_DB`` in the environment, the
    default is ``6 * sigma_db`` (``20`` dB for a shadowing-free model).
    """
    value: Union[float, str, None] = override
    if value is None:
        raw = os.environ.get(CULL_MARGIN_ENV, "").strip()
        if raw:
            value = raw
        elif sigma_db > 0.0:
            return CULL_SIGMA_FACTOR * float(sigma_db)
        else:
            return CULL_DETERMINISTIC_MARGIN_DB
    if isinstance(value, str):
        if value.lower() == "off":
            return None
        value = float(value)  # a malformed knob should fail loudly
    margin = float(value)
    return None if margin < 0.0 else margin


class _PairCache:
    """``(tx_id, rx_id) -> value`` cache with O(degree) invalidation.

    Values are floats or small tuples of floats — the mean-power cache
    stores ``(dbm, mw)`` so the linear-domain conversion is computed
    once per pair rather than once per frame.

    A secondary index maps each radio id to the set of cached keys it
    participates in, so :meth:`invalidate` (called on every
    ``Radio.move_to``) touches only that radio's links instead of
    scanning the whole table — mobility ticks stay O(N) rather than
    degrading quadratically with the link count.
    """

    __slots__ = ("_values", "_by_radio")

    def __init__(self) -> None:
        self._values: Dict[Tuple[int, int], Any] = {}
        self._by_radio: Dict[int, Set[Tuple[int, int]]] = {}

    def get(self, key: Tuple[int, int]) -> Optional[Any]:
        return self._values.get(key)

    def put(self, key: Tuple[int, int], value: Any) -> None:
        self._values[key] = value
        for radio_id in key:
            self._by_radio.setdefault(radio_id, set()).add(key)

    def invalidate(self, radio_id: int) -> int:
        """Drop every cached entry involving ``radio_id``; returns the count."""
        keys = self._by_radio.pop(radio_id, None)
        if not keys:
            return 0
        dropped = 0
        for key in keys:
            if self._values.pop(key, None) is not None:
                dropped += 1
            for other in key:
                if other != radio_id:
                    peers = self._by_radio.get(other)
                    if peers is not None:
                        peers.discard(key)
                        if not peers:
                            del self._by_radio[other]
        return dropped

    def __len__(self) -> int:
        return len(self._values)


class Transmission:
    """One frame in flight: who sent it, when it ends, and its per-radio power."""

    __slots__ = ("frame", "sender", "start_ns", "end_ns", "rx_power_mw")

    def __init__(self, frame: "Frame", sender: "Radio", start_ns: int, end_ns: int):
        self.frame = frame
        self.sender = sender
        self.start_ns = start_ns
        self.end_ns = end_ns
        #: Received power in mW at each listening radio, keyed by radio id.
        #: Radios culled below the noise floor have no entry — this dict is
        #: the authoritative set of radios that observe the transmission.
        self.rx_power_mw: Dict[int, float] = {}

    @property
    def duration_ns(self) -> int:
        """Airtime of the transmission."""
        return self.end_ns - self.start_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Transmission {self.frame.describe()} [{self.start_ns},{self.end_ns}]>"


class Channel:
    """Broadcast medium connecting all radios of one frequency band."""

    def __init__(
        self,
        sim: Simulator,
        propagation: LogNormalShadowing,
        timing: "PhyTiming",
        rngs: RngStreams,
        shadowing_mode: str = "per_frame",
        trace: Optional[TraceRecorder] = None,
        band: int = 0,
        air_latency_ns: int = 1_000,
        registry=None,
        cull_margin_db: Union[float, str, None] = None,
        vector: Optional[bool] = None,
        spatial: Optional[bool] = None,
    ) -> None:
        if shadowing_mode not in SHADOWING_MODES:
            raise ValueError(
                f"shadowing_mode must be one of {SHADOWING_MODES}, got {shadowing_mode!r}"
            )
        self.sim = sim
        self.propagation = propagation
        self.timing = timing
        self.shadowing_mode = shadowing_mode
        #: Frequency band index.  Radios only interact when they share a
        #: Channel object, so non-overlapping bands are modeled as separate
        #: channels — matching the paper's floor where "only the ones using
        #: the same frequency band are considered".
        self.band = int(band)
        #: Propagation + CCA detection latency: a transmission becomes
        #: observable at other radios only after this delay.  Without it,
        #: two stations whose backoff counters expire in the same slot
        #: would serialize instead of colliding (zero-latency carrier
        #: sense), and DCF would be collision-free — wildly unphysical.
        #: 1 us approximates aCCATime/propagation at WLAN ranges.
        self.air_latency_ns = int(air_latency_ns)
        if self.air_latency_ns < 0:
            raise ValueError("air latency cannot be negative")
        # NB: "trace or ..." would discard an *empty* recorder (len == 0 is
        # falsy), so test identity explicitly.
        self.trace = trace if trace is not None else TraceRecorder()
        self.trace.bind_clock(lambda: sim.now)
        self._rngs = rngs
        #: Resolved culling margin in dB, or None for the exhaustive path.
        self.cull_margin_db = resolve_cull_margin_db(
            propagation.sigma_db, cull_margin_db
        )
        #: Attached radios, keyed by id.  Insertion order *is* attach
        #: order — the dict doubles as the ordered radio store, so
        #: detach is an O(1) pop that preserves the iteration order of
        #: every remaining radio (pinned by tests/test_spatial.py).
        self._radios_by_id: Dict[int, "Radio"] = {}
        #: Monotone per-radio attach sequence numbers: spatial candidate
        #: sets sort by these to restore attach-order delivery.  A
        #: re-attached radio gets a fresh (higher) number, matching its
        #: new position at the end of the dict's insertion order.
        self._attach_seq: Dict[int, int] = {}
        self._next_attach_seq = 0
        self._active: List[Transmission] = []
        #: Spatial candidate generation (``REPRO_SPATIAL``; see
        #: repro.phy.spatial).  An explicit ``spatial`` argument wins
        #: over the environment knob.  Requires an active culling margin
        #: — without one there is no sound reach radius, so the knob is
        #: inert and the exhaustive sweep runs unchanged.
        use_spatial = spatial_enabled() if spatial is None else spatial
        self._spatial_pending = bool(use_spatial) and self.cull_margin_db is not None
        #: The grid itself, built lazily at the first transmission (cell
        #: sizing needs the topology extent) or eagerly via
        #: :meth:`prepare_spatial`.
        self._spatial: Optional[SpatialIndex] = None
        #: Weakest ``min(noise_floor, T_cs)`` ever attached to the band:
        #: the threshold the reach radius must stay sound against.
        #: Monotone non-increasing — never relaxed on detach (a stale,
        #: lower value only enlarges radii; see the module docstring).
        self._weakest_threshold_dbm = math.inf
        #: Strongest attach-time transmit power (cell-size heuristic).
        self._max_tx_power_dbm = -math.inf
        #: Memoized reach radius per transmit power; cleared whenever
        #: the weakest threshold tightens.
        self._reach_memo: Dict[float, float] = {}
        self.spatial_queries = 0
        self.spatial_candidates = 0
        self.spatial_skipped = 0
        self._registry = None
        #: Snapshot of the ``REPRO_HOTPATH`` knob (see repro.util.hotpath);
        #: sampled at construction so the per-frame path branches on a
        #: plain attribute.
        self._hotpath = hotpath_enabled()
        #: Cached per-link shadowing offsets (``per_link`` mode only).
        #: Semantic state, not a perf cache: ``per_link`` means one draw
        #: per pair for the whole run, so this survives REPRO_HOTPATH=off.
        self._link_shadowing_db = _PairCache()
        #: Cached ``(mean_dbm, mean_mw)`` per (tx, rx) pair (hot path only).
        self._mean_rx_cache = _PairCache()
        #: Cached fully-composed rx power in mW (``per_link`` + hot path).
        self._link_rx_mw = _PairCache()
        #: Memoized per-link shadowing generators (identity per (tx, rx);
        #: avoids rebuilding the substream key tuple per frame).
        self._link_rng_memo: Dict[Tuple[int, int], Any] = {}
        #: Counters for diagnostics and tests.
        self.frames_sent = 0
        self.links_culled = 0
        #: Struct-of-arrays backend (``REPRO_VECTOR``; see repro.phy.vector).
        #: An explicit ``vector`` argument wins over the environment knob.
        #: Constructed lazily-imported so the scalar path never touches
        #: the module (numpy is optional for it).
        self._vector_backend = None
        use_vector = vector_enabled() if vector is None else vector
        if use_vector:
            from repro.phy.vector import VectorBackend

            self._vector_backend = VectorBackend(self)
        if registry is not None:
            self.register_counters(registry)

    def register_counters(self, registry) -> None:
        """Expose medium-level counters under the ``channel`` prefix.

        Per-band channels share the prefix, so a multi-band network's
        snapshot reports medium-wide totals (``cull_margin_db`` included:
        with several bands the snapshot sums the per-band margins, so
        divide by ``len(network.channels)`` to recover the setting).
        """
        self._registry = registry
        registry.register_source("channel", self.counters)

    def counters(self) -> Dict[str, float]:
        """Registry-source view of this band's counters.

        ``culled_links`` counts per-radio notifications skipped by
        below-floor culling; ``cull_margin_db`` is the resolved margin
        (``-1.0`` when culling is off).
        """
        backend = self._vector_backend
        grid = self._spatial
        return {
            "frames_sent": self.frames_sent,
            "active_transmissions": len(self._active),
            "radios": len(self._radios_by_id),
            "culled_links": self.links_culled,
            "cull_margin_db": (
                self.cull_margin_db if self.cull_margin_db is not None else -1.0
            ),
            # Vector-backend activity (0 when the scalar path is active):
            # batches = frames evaluated through the array path, links =
            # surviving receiver evaluations those frames produced.
            "vector_batches": backend.batches if backend is not None else 0,
            "vector_links": backend.links if backend is not None else 0,
            # Spatial-index activity (zeros when the grid is off):
            # queries = grid lookups, candidates = radios those lookups
            # returned (after sender exclusion), skipped = attached
            # radios the queries never visited.  Every skipped radio is
            # a link the cull test would have rejected, and both paths
            # charge grid skips into ``culled_links`` *per frame*, so
            # that counter stays identical to the exhaustive path's.
            # The spatial_* counters themselves tick per grid query —
            # scalar mode queries every frame, the vector backend once
            # per cached plan build — so they are mode-dependent
            # diagnostics (like ``vector_batches``), not
            # equivalence-checked.
            "spatial_queries": self.spatial_queries,
            "spatial_candidates": self.spatial_candidates,
            "spatial_skipped": self.spatial_skipped,
            "spatial_cell_size_m": grid.cell_size_m if grid is not None else -1.0,
            "spatial_cells": grid.cell_count if grid is not None else 0,
        }

    # ------------------------------------------------------------------
    # Topology management
    # ------------------------------------------------------------------
    def attach(self, radio: "Radio") -> None:
        """Register a radio with the medium.

        Mid-run attach contract: a radio attached while transmissions are
        in flight does **not** observe them — it receives no retroactive
        ``on_air_start`` (its CCA never saw the frame begin) and, because
        end-of-air is delivered only to radios keyed in the transmission's
        ``rx_power_mw``, no spurious ``on_air_end`` either.  It starts
        participating with the first transmission that begins after the
        attach.
        """
        if radio.radio_id in self._radios_by_id:
            raise ValueError(f"duplicate radio id {radio.radio_id}")
        self._radios_by_id[radio.radio_id] = radio
        self._attach_seq[radio.radio_id] = self._next_attach_seq
        self._next_attach_seq += 1
        config = radio.config
        threshold = min(config.noise_floor_dbm, config.cs_threshold_dbm)
        if threshold < self._weakest_threshold_dbm:
            self._weakest_threshold_dbm = threshold
            self._reach_memo.clear()  # radii must cover the new weakest
        if config.tx_power_dbm > self._max_tx_power_dbm:
            self._max_tx_power_dbm = config.tx_power_dbm
        if self._spatial is not None:
            position = radio.position
            self._spatial.add(radio.radio_id, position.x, position.y)
        if self._vector_backend is not None:
            self._vector_backend.rebuild()
        radio.on_attached()

    def detach(self, radio: "Radio") -> None:
        """Remove a radio from the medium (the node left the network).

        Mid-run detach contract, mirroring :meth:`attach`: the radio is
        scrubbed from every in-flight transmission's observer set, so it
        will never receive an ``on_air_end`` for a frame it stopped
        listening to — nor any notification for frames that start after
        the detach.  Position-dependent caches involving the radio are
        dropped (it may re-attach somewhere else).  The radio's own
        :meth:`repro.phy.radio.Radio.on_detached` resets its reception
        state (in-air frames, CCA, lock).
        """
        if self._radios_by_id.pop(radio.radio_id, None) is None:
            raise ValueError(f"radio id {radio.radio_id} is not attached")
        # O(1) departure: the ordered dict pop above removed the radio
        # without disturbing any other radio's iteration position (the
        # old list-based store paid an O(N) ``list.remove`` here, which
        # churn faults hammer).  The attach-seq entry goes with it; the
        # weakest-threshold floor is deliberately *not* recomputed (see
        # the class docstring — a stale, lower floor is still sound).
        del self._attach_seq[radio.radio_id]
        if self._spatial is not None:
            self._spatial.remove(radio.radio_id)
        for tx in self._active:
            tx.rx_power_mw.pop(radio.radio_id, None)
        self.on_radio_moved(radio.radio_id)
        for pair in [p for p in self._link_rng_memo if radio.radio_id in p]:
            # Memory hygiene only: substream() memoizes per key, so a
            # re-attached radio gets the identical generator back.
            del self._link_rng_memo[pair]
        if self._vector_backend is not None:
            self._vector_backend.rebuild()
        radio.on_detached()

    @property
    def radios(self) -> List["Radio"]:
        """All attached radios, in attach order (a fresh copy per call).

        Safe to mutate or hold across attach/detach; hot loops should
        use :meth:`radios_view` instead — this property builds a new
        list on every access.
        """
        return list(self._radios_by_id.values())

    def radios_view(self) -> ValuesView["Radio"]:
        """Non-copying attach-ordered view of the attached radios.

        The internal accessor for hot loops: a live ``dict`` values view
        — O(1), reflects later attaches/detaches, and must not be
        mutated or held across topology changes while iterating.
        """
        return self._radios_by_id.values()

    @property
    def radio_count(self) -> int:
        """Number of attached radios (no copy)."""
        return len(self._radios_by_id)

    def invalidate_link_shadowing(self, radio_id: int) -> int:
        """Drop cached per-link shadowing draws involving ``radio_id``.

        Only meaningful in ``per_link`` mode: a moved radio's old draws
        describe paths that no longer exist.  Returns how many entries
        were dropped.  The cache is indexed per radio, so this is
        O(degree of the radio), not O(all cached links).
        """
        self._link_rx_mw.invalidate(radio_id)  # composed from the draws
        return self._link_shadowing_db.invalidate(radio_id)

    def on_radio_moved(self, radio_id: int) -> None:
        """Invalidate everything position-dependent for ``radio_id``.

        Called by :meth:`repro.phy.radio.Radio.move_to`: drops the
        radio's cached mean-power entries (they encode the old distance),
        its per-link shadowing draws, and the composed per-link powers
        derived from both.
        """
        self._mean_rx_cache.invalidate(radio_id)
        self._link_shadowing_db.invalidate(radio_id)
        self._link_rx_mw.invalidate(radio_id)
        if self._spatial is not None:
            radio = self._radios_by_id.get(radio_id)
            if radio is not None:  # detach scrubs the grid itself
                position = radio.position  # move_to updated it already
                self._spatial.move(radio_id, position.x, position.y)
        if self._vector_backend is not None:
            self._vector_backend.on_radio_moved(radio_id)

    def on_radio_power_changed(self, radio_id: int) -> None:
        """Invalidate everything tx-power-dependent for ``radio_id``.

        Called by :meth:`repro.phy.radio.Radio.set_tx_power_dbm` (the
        C-SR coordinated power capping).  Narrower than
        :meth:`on_radio_moved`: mean powers and composed per-link powers
        encode the old transmit power, but ``per_link`` shadowing draws
        are a property of the *link*, not the power, and must survive —
        redrawing them would silently change physics with the RNG.
        The vector backend's row/plan invalidation is position/power
        agnostic (it refills from current config without consuming
        draws), so it is shared with the moved path.
        """
        self._mean_rx_cache.invalidate(radio_id)
        self._link_rx_mw.invalidate(radio_id)
        if self._vector_backend is not None:
            self._vector_backend.on_radio_moved(radio_id)

    @property
    def active_transmissions(self) -> List[Transmission]:
        """Transmissions currently in the air."""
        return list(self._active)

    # ------------------------------------------------------------------
    # Spatial candidate generation (REPRO_SPATIAL; see repro.phy.spatial)
    # ------------------------------------------------------------------
    @property
    def spatial_index(self) -> Optional[SpatialIndex]:
        """The hash grid, or None (off, or not yet built)."""
        return self._spatial

    @property
    def spatial_active(self) -> bool:
        """True when spatial candidate generation will be used."""
        return self._spatial_pending

    def prepare_spatial(self) -> Optional[SpatialIndex]:
        """Eagerly build the grid (idempotent; None when spatial is off).

        :meth:`repro.net.network.Network.finalize` calls this once the
        topology is complete so the cell-size heuristic sees the full
        extent and manifests/counters report the grid before traffic
        starts.  Without it the first transmission builds the grid
        lazily from whatever is attached at that point — still sound
        (cell size is perf-only), possibly less well sized.
        """
        return self._ensure_spatial()

    def _ensure_spatial(self) -> Optional[SpatialIndex]:
        grid = self._spatial
        if grid is not None or not self._spatial_pending:
            return grid
        radios = self._radios_by_id
        if not radios:
            return None  # defer until something is attached
        grid = SpatialIndex(self._resolve_cell_size())
        for radio in radios.values():
            position = radio.position
            grid.add(radio.radio_id, position.x, position.y)
        self._spatial = grid
        record_grid_built(grid.cell_size_m)
        return grid

    def _resolve_cell_size(self) -> float:
        """Cell edge for the grid: reach radius, clamped to the extent.

        A cell the size of the strongest transmitter's reach radius
        makes a query touch ~9 cells regardless of N; clamping to the
        topology's larger axis span keeps a floor smaller than the
        radius from degenerating below one cell of useful resolution
        (it becomes a 1–2 cell grid ≡ the exhaustive sweep).  Frozen at
        first build: radios attached later may shift the extent or the
        power maximum, which only affects constants, never soundness —
        per-sender query radii always come from :meth:`_reach_radius`.
        """
        reach = self.propagation.reach_radius_m(
            self._max_tx_power_dbm,
            self._weakest_threshold_dbm,
            self.cull_margin_db,
        )
        xs = [r.position.x for r in self._radios_by_id.values()]
        ys = [r.position.y for r in self._radios_by_id.values()]
        extent = max(max(xs) - min(xs), max(ys) - min(ys))
        if extent > 0.0:
            return min(reach, extent)
        return reach

    def _reach_radius(self, sender: "Radio") -> float:
        """The sender's sound culling radius (memoized per tx power)."""
        power = sender.config.tx_power_dbm
        radius = self._reach_memo.get(power)
        if radius is None:
            radius = self.propagation.reach_radius_m(
                power, self._weakest_threshold_dbm, self.cull_margin_db
            )
            self._reach_memo[power] = radius
            record_reach_radius(radius)
        return radius

    def _spatial_candidates(self, sender: "Radio") -> List["Radio"]:
        """Candidate receivers for one frame, in attach order.

        A provable superset of the cull survivors (every skipped radio
        fails ``mean + margin >= min(noise, T_cs)``); the caller still
        runs the exact cull test per candidate.  Sorting by attach
        sequence restores the delivery order the exhaustive loop
        produces, keeping notification order — and therefore every
        downstream outcome — bit-identical.
        """
        grid = self._spatial or self._ensure_spatial()
        position = sender.position
        ids = grid.query_disk(position.x, position.y, self._reach_radius(sender))
        self.spatial_queries += 1
        sender_id = sender.radio_id
        ids = [i for i in ids if i != sender_id]
        ids.sort(key=self._attach_seq.__getitem__)
        self.spatial_candidates += len(ids)
        by_id = self._radios_by_id
        return [by_id[i] for i in ids]

    def record_spatial_occupancy(self) -> None:
        """Observe per-cell occupancy into ``channel/spatial_occupancy``.

        One histogram sample per non-empty cell at call time — a
        point-in-time distribution, recorded when a registry is bound
        and the grid exists (no-op otherwise).  Called by
        :meth:`repro.net.network.Network.finalize` after the eager grid
        build; benches may call it again at end of run.
        """
        registry = self._registry
        grid = self._spatial
        if registry is None or grid is None:
            return
        histogram = registry.histogram(
            "channel/spatial_occupancy", buckets=(1, 2, 4, 8, 16, 32, 64, 128)
        )
        for occupancy in grid.occupancy():
            histogram.observe(occupancy)

    # ------------------------------------------------------------------
    # Transmission lifecycle
    # ------------------------------------------------------------------
    def transmit(self, sender: "Radio", frame: "Frame") -> Transmission:
        """Put ``frame`` on the air from ``sender``; returns the record.

        Called by :meth:`repro.phy.radio.Radio.start_transmission` only.
        Radios whose mean received power sits ``cull_margin_db`` below
        both their noise floor and their carrier-sense threshold are
        skipped entirely (no draw, no ``rx_power_mw`` entry, no events).

        With the vector backend active the whole receiver sweep —
        culling, power draws, masks, delivery — runs as one batched
        pass in :meth:`repro.phy.vector.VectorBackend.transmit`;
        per-node outcomes are bit-identical either way.
        """
        if self._vector_backend is not None:
            return self._vector_backend.transmit(sender, frame)
        duration = self.timing.frame_airtime_ns(frame)
        tx = Transmission(frame, sender, self.sim.now, self.sim.now + duration)
        self._active.append(tx)
        self.frames_sent += 1
        margin = self.cull_margin_db
        latency = self.air_latency_ns
        schedule = self.sim.schedule
        culled = 0
        receivers: List[Tuple["Radio", float]] = []
        if self._spatial_pending:
            # Grid pre-filter: sweep only the sender's reach disk.  The
            # radios skipped here are exactly radios the cull test below
            # would have rejected (reach-radius soundness), so they are
            # charged to ``culled`` to keep the counter identical to the
            # exhaustive path's.
            candidates = self._spatial_candidates(sender)
            culled = len(self._radios_by_id) - 1 - len(candidates)
            self.spatial_skipped += culled
            sweep = candidates
        else:
            sweep = self._radios_by_id.values()
        for radio in sweep:
            if radio is sender:
                continue
            if margin is not None:
                mean_dbm = self._mean_rx_dbm(sender, radio)
                config = radio.config
                if (
                    mean_dbm + margin < config.noise_floor_dbm
                    and mean_dbm + margin < config.cs_threshold_dbm
                ):
                    culled += 1
                    continue
            power_mw = self._received_power_mw(sender, radio, frame)
            tx.rx_power_mw[radio.radio_id] = power_mw
            if not latency:
                radio.on_air_start(tx, power_mw)
            elif self._hotpath:
                receivers.append((radio, power_mw))
            else:
                schedule(latency, radio.on_air_start, tx, power_mw)
        if receivers:
            # All per-receiver notifications share one timestamp and
            # consecutive seqs, so nothing can fire between them — one
            # coalesced event delivering them in the same order is
            # exactly equivalent and saves N-1 heap entries per frame.
            schedule(latency, self._deliver_air_start, tx, receivers)
        self.links_culled += culled
        if self.trace.wants("channel"):
            self.trace.record(
                "channel", "tx-start",
                frame=frame.describe(), sender=sender.radio_id, culled=culled,
            )
        self.sim.schedule(duration, self._end_transmission, tx)
        return tx

    def _end_transmission(self, tx: Transmission) -> None:
        """Remove a finished transmission and notify its observers.

        Only radios keyed in ``tx.rx_power_mw`` — the ones that received
        ``on_air_start`` — are notified.  Radios culled at transmit time
        and radios attached while the frame was in flight never hear
        about it (see :meth:`attach` for the mid-run attach contract).
        """
        self._active.remove(tx)
        if self.trace.wants("channel"):
            self.trace.record("channel", "tx-end", frame=tx.frame.describe())
        latency = self.air_latency_ns
        radios_by_id = self._radios_by_id
        if self._vector_backend is not None:
            # Batched end-of-air: one coalesced event (or inline call at
            # zero latency), mirroring the hot path's event economy.
            if not latency:
                self._vector_backend.deliver_air_end(tx)
            elif tx.rx_power_mw:
                self.sim.schedule(
                    latency, self._vector_backend.deliver_air_end, tx
                )
        elif latency and self._hotpath:
            if tx.rx_power_mw:
                # Same coalescing argument as in transmit(): the end
                # notifications are back-to-back either way.
                self.sim.schedule(latency, self._deliver_air_end, tx)
        else:
            for radio_id in tx.rx_power_mw:
                radio = radios_by_id.get(radio_id)
                if radio is None:
                    continue  # detached after this frame started
                if latency:
                    self.sim.schedule(latency, radio.on_air_end, tx)
                else:
                    radio.on_air_end(tx)
        tx.sender.on_own_tx_end(tx)

    def _deliver_air_start(
        self, tx: Transmission, receivers: List[Tuple["Radio", float]]
    ) -> None:
        """Coalesced start-of-air delivery (hot path, latency > 0 only).

        Receivers are notified in attach order — the order the
        per-receiver events fired in on the uncoalesced path.
        """
        for radio, power_mw in receivers:
            radio.on_air_start(tx, power_mw)

    def _deliver_air_end(self, tx: Transmission) -> None:
        """Coalesced end-of-air delivery (hot path, latency > 0 only)."""
        radios_by_id = self._radios_by_id
        for radio_id in tx.rx_power_mw:
            radio = radios_by_id.get(radio_id)
            if radio is not None:  # detached radios never hear the end
                radio.on_air_end(tx)

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def _mean_rx(self, sender: "Radio", receiver: "Radio") -> Tuple[float, float]:
        """Deterministic mean received power as ``(dbm, mw)``.

        Cached per (tx, rx) pair on the hot path; with
        ``REPRO_HOTPATH=off`` both values are re-derived per call through
        the exact same expressions, so the realization is identical
        either way.  The cache assumes positions and transmit powers only
        change via :meth:`repro.phy.radio.Radio.move_to`, which
        invalidates the moved radio's entries through
        :meth:`on_radio_moved`.
        """
        if self._hotpath:
            key = (sender.radio_id, receiver.radio_id)
            entry = self._mean_rx_cache.get(key)
            if entry is None:
                dist = sender.position.distance_to(receiver.position)
                mean_dbm = self.propagation.mean_rx_dbm(
                    sender.config.tx_power_dbm, dist
                )
                entry = (mean_dbm, dbm_to_mw(mean_dbm))
                self._mean_rx_cache.put(key, entry)
            return entry
        dist = sender.position.distance_to(receiver.position)
        mean_dbm = self.propagation.mean_rx_dbm(sender.config.tx_power_dbm, dist)
        return (mean_dbm, dbm_to_mw(mean_dbm))

    def _mean_rx_dbm(self, sender: "Radio", receiver: "Radio") -> float:
        """Deterministic mean received power in dBm (culling check)."""
        return self._mean_rx(sender, receiver)[0]

    def _link_rng(self, tx_id: int, rx_id: int):
        """The ordered pair's private shadowing generator.

        Seeded via ``derive_seed(root, "shadowing", band, tx, rx)``, so
        the stream depends only on the link's identity — never on how
        many draws other links consumed or whether they were culled.
        The generator *object* is the same either way (``substream``
        memoizes per key); the hot path only skips rebuilding the key
        tuple, so the draw sequence cannot differ between modes.
        """
        if self._hotpath:
            pair = (tx_id, rx_id)
            rng = self._link_rng_memo.get(pair)
            if rng is None:
                rng = self._rngs.substream("shadowing", self.band, tx_id, rx_id)
                self._link_rng_memo[pair] = rng
            return rng
        return self._rngs.substream("shadowing", self.band, tx_id, rx_id)

    def _received_power_mw(self, sender: "Radio", receiver: "Radio", frame: "Frame") -> float:
        """Draw the received power of this frame at ``receiver``.

        Composition per shadowing mode (identical expressions on the
        cached and re-derivation paths):

        * ``none`` — the linear mean, ``dbm_to_mw(mean_dbm)``.
        * ``per_link`` — ``dbm_to_mw(mean_dbm + offset)``; the composed
          value is constant per pair, so the hot path caches it whole.
        * ``per_frame`` — ``mean_mw * db_to_ratio(offset)``: the cached
          linear mean times the fresh offset ratio, one multiply per
          frame instead of a ``10 **`` of the recomposed dB sum.
        """
        mean_dbm, mean_mw = self._mean_rx(sender, receiver)
        mode = self.shadowing_mode
        if mode == "none":
            return mean_mw
        if mode == "per_link":
            key = (sender.radio_id, receiver.radio_id)
            if self._hotpath:
                rx_mw = self._link_rx_mw.get(key)
                if rx_mw is not None:
                    return rx_mw
            offset = self._link_shadowing_db.get(key)
            if offset is None:
                offset = self.propagation.shadowing_db(
                    self._link_rng(sender.radio_id, receiver.radio_id)
                )
                self._link_shadowing_db.put(key, offset)
            rx_mw = dbm_to_mw(mean_dbm + offset)
            if self._hotpath:
                self._link_rx_mw.put(key, rx_mw)
            return rx_mw
        # per_frame
        offset = self.propagation.shadowing_db(
            self._link_rng(sender.radio_id, receiver.radio_id)
        )
        return mean_mw * db_to_ratio(offset)
