"""The shared wireless medium.

The :class:`Channel` owns the set of in-flight :class:`Transmission`\\ s.
When a radio starts transmitting, the channel draws a received power for
every other attached radio from the propagation model (one shadowing
realization per frame by default — this is what makes the simulated
packet-reception rate converge to the paper's eq. 3) and notifies each
radio, which updates its clear-channel assessment and reception state.

Shadowing modes
---------------

``per_frame``
    A fresh ``X_sigma`` per (transmitter, receiver, frame).  Default;
    realizes the statistical PRR model.
``per_link``
    One draw per ordered (transmitter, receiver) pair, fixed for the whole
    run.  Useful for deterministic unit tests and for studying stable
    topologies.
``none``
    Pure deterministic path loss.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.phy.propagation import LogNormalShadowing
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder
from repro.util.rng import RngStreams
from repro.util.units import dbm_to_mw

if TYPE_CHECKING:  # avoid a phy <-> mac import cycle; hints only
    from repro.mac.frames import Frame
    from repro.mac.timing import PhyTiming

#: Valid values for the channel's ``shadowing_mode``.
SHADOWING_MODES = ("per_frame", "per_link", "none")


class Transmission:
    """One frame in flight: who sent it, when it ends, and its per-radio power."""

    __slots__ = ("frame", "sender", "start_ns", "end_ns", "rx_power_mw")

    def __init__(self, frame: "Frame", sender: "Radio", start_ns: int, end_ns: int):
        self.frame = frame
        self.sender = sender
        self.start_ns = start_ns
        self.end_ns = end_ns
        #: Received power in mW at each listening radio, keyed by radio id.
        self.rx_power_mw: Dict[int, float] = {}

    @property
    def duration_ns(self) -> int:
        """Airtime of the transmission."""
        return self.end_ns - self.start_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Transmission {self.frame.describe()} [{self.start_ns},{self.end_ns}]>"


class Channel:
    """Broadcast medium connecting all radios of one frequency band."""

    def __init__(
        self,
        sim: Simulator,
        propagation: LogNormalShadowing,
        timing: "PhyTiming",
        rngs: RngStreams,
        shadowing_mode: str = "per_frame",
        trace: Optional[TraceRecorder] = None,
        band: int = 0,
        air_latency_ns: int = 1_000,
        registry=None,
    ) -> None:
        if shadowing_mode not in SHADOWING_MODES:
            raise ValueError(
                f"shadowing_mode must be one of {SHADOWING_MODES}, got {shadowing_mode!r}"
            )
        self.sim = sim
        self.propagation = propagation
        self.timing = timing
        self.shadowing_mode = shadowing_mode
        #: Frequency band index.  Radios only interact when they share a
        #: Channel object, so non-overlapping bands are modeled as separate
        #: channels — matching the paper's floor where "only the ones using
        #: the same frequency band are considered".
        self.band = int(band)
        #: Propagation + CCA detection latency: a transmission becomes
        #: observable at other radios only after this delay.  Without it,
        #: two stations whose backoff counters expire in the same slot
        #: would serialize instead of colliding (zero-latency carrier
        #: sense), and DCF would be collision-free — wildly unphysical.
        #: 1 us approximates aCCATime/propagation at WLAN ranges.
        self.air_latency_ns = int(air_latency_ns)
        if self.air_latency_ns < 0:
            raise ValueError("air latency cannot be negative")
        # NB: "trace or ..." would discard an *empty* recorder (len == 0 is
        # falsy), so test identity explicitly.
        self.trace = trace if trace is not None else TraceRecorder()
        self.trace.bind_clock(lambda: sim.now)
        self._rng = rngs.stream("shadowing", band)
        self._radios: List["Radio"] = []
        self._active: List[Transmission] = []
        self._link_shadowing_db: Dict[tuple, float] = {}
        #: Counters for diagnostics and tests.
        self.frames_sent = 0
        if registry is not None:
            self.register_counters(registry)

    def register_counters(self, registry) -> None:
        """Expose medium-level counters under the ``channel`` prefix.

        Per-band channels share the prefix, so a multi-band network's
        snapshot reports medium-wide totals.
        """
        registry.register_source("channel", self.counters)

    def counters(self) -> Dict[str, int]:
        """Registry-source view of this band's counters."""
        return {
            "frames_sent": self.frames_sent,
            "active_transmissions": len(self._active),
            "radios": len(self._radios),
        }

    # ------------------------------------------------------------------
    # Topology management
    # ------------------------------------------------------------------
    def attach(self, radio: "Radio") -> None:
        """Register a radio with the medium."""
        if any(r.radio_id == radio.radio_id for r in self._radios):
            raise ValueError(f"duplicate radio id {radio.radio_id}")
        self._radios.append(radio)

    @property
    def radios(self) -> List["Radio"]:
        """All attached radios."""
        return list(self._radios)

    def invalidate_link_shadowing(self, radio_id: int) -> int:
        """Drop cached per-link shadowing draws involving ``radio_id``.

        Only meaningful in ``per_link`` mode: a moved radio's old draws
        describe paths that no longer exist.  Returns how many entries
        were dropped.  (:meth:`repro.phy.radio.Radio.move_to` calls this.)
        """
        doomed = [key for key in self._link_shadowing_db if radio_id in key]
        for key in doomed:
            del self._link_shadowing_db[key]
        return len(doomed)

    @property
    def active_transmissions(self) -> List[Transmission]:
        """Transmissions currently in the air."""
        return list(self._active)

    # ------------------------------------------------------------------
    # Transmission lifecycle
    # ------------------------------------------------------------------
    def transmit(self, sender: "Radio", frame: "Frame") -> Transmission:
        """Put ``frame`` on the air from ``sender``; returns the record.

        Called by :meth:`repro.phy.radio.Radio.start_transmission` only.
        """
        duration = self.timing.frame_airtime_ns(frame)
        tx = Transmission(frame, sender, self.sim.now, self.sim.now + duration)
        self._active.append(tx)
        self.frames_sent += 1
        if self.trace.wants("channel"):
            self.trace.record(
                "channel", "tx-start", frame=frame.describe(), sender=sender.radio_id
            )
        for radio in self._radios:
            if radio is sender:
                continue
            power_mw = self._received_power_mw(sender, radio, frame)
            tx.rx_power_mw[radio.radio_id] = power_mw
            if self.air_latency_ns:
                self.sim.schedule(self.air_latency_ns, radio.on_air_start, tx, power_mw)
            else:
                radio.on_air_start(tx, power_mw)
        self.sim.schedule(duration, self._end_transmission, tx)
        return tx

    def _end_transmission(self, tx: Transmission) -> None:
        """Remove a finished transmission and notify every radio."""
        self._active.remove(tx)
        if self.trace.wants("channel"):
            self.trace.record("channel", "tx-end", frame=tx.frame.describe())
        for radio in self._radios:
            if radio is tx.sender:
                continue
            if self.air_latency_ns:
                self.sim.schedule(self.air_latency_ns, radio.on_air_end, tx)
            else:
                radio.on_air_end(tx)
        tx.sender.on_own_tx_end(tx)

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def _received_power_mw(self, sender: "Radio", receiver: "Radio", frame: "Frame") -> float:
        """Draw the received power of this frame at ``receiver``."""
        dist = sender.position.distance_to(receiver.position)
        tx_dbm = sender.config.tx_power_dbm
        if self.shadowing_mode == "none":
            rx_dbm = self.propagation.mean_rx_dbm(tx_dbm, dist)
        elif self.shadowing_mode == "per_link":
            key = (sender.radio_id, receiver.radio_id)
            offset = self._link_shadowing_db.get(key)
            if offset is None:
                sigma = self.propagation.sigma_db
                offset = float(self._rng.normal(0.0, sigma)) if sigma > 0 else 0.0
                self._link_shadowing_db[key] = offset
            rx_dbm = self.propagation.mean_rx_dbm(tx_dbm, dist) + offset
        else:  # per_frame
            rx_dbm = self.propagation.sample_rx_dbm(tx_dbm, dist, self._rng)
        return dbm_to_mw(rx_dbm)
