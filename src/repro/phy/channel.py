"""The shared wireless medium.

The :class:`Channel` owns the set of in-flight :class:`Transmission`\\ s.
When a radio starts transmitting, the channel draws a received power for
every other attached radio from the propagation model (one shadowing
realization per frame by default — this is what makes the simulated
packet-reception rate converge to the paper's eq. 3) and notifies each
radio, which updates its clear-channel assessment and reception state.

Shadowing modes
---------------

``per_frame``
    A fresh ``X_sigma`` per (transmitter, receiver, frame).  Default;
    realizes the statistical PRR model.
``per_link``
    One draw per ordered (transmitter, receiver) pair, fixed for the whole
    run.  Useful for deterministic unit tests and for studying stable
    topologies.
``none``
    Pure deterministic path loss.

Per-link RNG substreams
-----------------------

Shadowing draws come from a *per-(transmitter, receiver)* generator,
keyed through :meth:`repro.util.rng.RngStreams.substream` with the same
SHA-256 :func:`~repro.util.rng.derive_seed` derivation the parallel
sweep executor uses for task seeds.  Each ordered pair owns an
independent counter-based stream, so consuming (or *skipping*) draws on
one link can never perturb any other link's randomness.  That
independence is the precondition for below-floor culling: a culled
link's draw is simply never taken, and every other link still sees
exactly the sequence it would have seen in an exhaustive run.

Below-floor interference culling
--------------------------------

For every (sender, receiver) pair the channel caches the deterministic
mean received power (path loss only — invalidated per radio on
:meth:`repro.phy.radio.Radio.move_to`).  When that mean sits more than
``cull_margin_db`` below **both** the receiver's noise floor and its
carrier-sense threshold, the receiver is skipped entirely for that
frame: no shadowing draw, no ``rx_power_mw`` entry, and neither the
``on_air_start`` nor the ``on_air_end`` event is scheduled.  The margin
defaults to 6σ of the shadowing model (20 dB when σ = 0), can be set
explicitly via the ``REPRO_CULL_MARGIN_DB`` environment knob, and
``REPRO_CULL_MARGIN_DB=off`` restores the old exhaustive path.  Culled
notifications are counted in the ``channel/culled_links`` counter.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple, Union

from repro.phy.propagation import LogNormalShadowing
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder
from repro.util.rng import RngStreams
from repro.util.units import dbm_to_mw

if TYPE_CHECKING:  # avoid a phy <-> mac import cycle; hints only
    from repro.mac.frames import Frame
    from repro.mac.timing import PhyTiming
    from repro.phy.radio import Radio

#: Valid values for the channel's ``shadowing_mode``.
SHADOWING_MODES = ("per_frame", "per_link", "none")

#: Environment knob: culling margin in dB, or ``off`` for the exhaustive path.
CULL_MARGIN_ENV = "REPRO_CULL_MARGIN_DB"

#: Default margin as a multiple of the shadowing sigma.
CULL_SIGMA_FACTOR = 6.0

#: Default margin (dB) when the propagation model has no shadowing term.
#: With σ = 0 there is no randomness to guard against, but culled links
#: still drop their (deterministic) interference energy; 20 dB keeps each
#: culled contribution at ≤ 1 % of the receiver's noise floor.
CULL_DETERMINISTIC_MARGIN_DB = 20.0


def resolve_cull_margin_db(
    sigma_db: float, override: Union[float, str, None] = None
) -> Optional[float]:
    """Resolve the culling margin: explicit override > env knob > default.

    Returns the margin in dB, or ``None`` when culling is disabled
    (``"off"``, case-insensitive, or any negative value).  With no
    override and no ``REPRO_CULL_MARGIN_DB`` in the environment, the
    default is ``6 * sigma_db`` (``20`` dB for a shadowing-free model).
    """
    value: Union[float, str, None] = override
    if value is None:
        raw = os.environ.get(CULL_MARGIN_ENV, "").strip()
        if raw:
            value = raw
        elif sigma_db > 0.0:
            return CULL_SIGMA_FACTOR * float(sigma_db)
        else:
            return CULL_DETERMINISTIC_MARGIN_DB
    if isinstance(value, str):
        if value.lower() == "off":
            return None
        value = float(value)  # a malformed knob should fail loudly
    margin = float(value)
    return None if margin < 0.0 else margin


class _PairCache:
    """``(tx_id, rx_id) -> float`` cache with O(degree) invalidation.

    A secondary index maps each radio id to the set of cached keys it
    participates in, so :meth:`invalidate` (called on every
    ``Radio.move_to``) touches only that radio's links instead of
    scanning the whole table — mobility ticks stay O(N) rather than
    degrading quadratically with the link count.
    """

    __slots__ = ("_values", "_by_radio")

    def __init__(self) -> None:
        self._values: Dict[Tuple[int, int], float] = {}
        self._by_radio: Dict[int, Set[Tuple[int, int]]] = {}

    def get(self, key: Tuple[int, int]) -> Optional[float]:
        return self._values.get(key)

    def put(self, key: Tuple[int, int], value: float) -> None:
        self._values[key] = value
        for radio_id in key:
            self._by_radio.setdefault(radio_id, set()).add(key)

    def invalidate(self, radio_id: int) -> int:
        """Drop every cached entry involving ``radio_id``; returns the count."""
        keys = self._by_radio.pop(radio_id, None)
        if not keys:
            return 0
        dropped = 0
        for key in keys:
            if self._values.pop(key, None) is not None:
                dropped += 1
            for other in key:
                if other != radio_id:
                    peers = self._by_radio.get(other)
                    if peers is not None:
                        peers.discard(key)
                        if not peers:
                            del self._by_radio[other]
        return dropped

    def __len__(self) -> int:
        return len(self._values)


class Transmission:
    """One frame in flight: who sent it, when it ends, and its per-radio power."""

    __slots__ = ("frame", "sender", "start_ns", "end_ns", "rx_power_mw")

    def __init__(self, frame: "Frame", sender: "Radio", start_ns: int, end_ns: int):
        self.frame = frame
        self.sender = sender
        self.start_ns = start_ns
        self.end_ns = end_ns
        #: Received power in mW at each listening radio, keyed by radio id.
        #: Radios culled below the noise floor have no entry — this dict is
        #: the authoritative set of radios that observe the transmission.
        self.rx_power_mw: Dict[int, float] = {}

    @property
    def duration_ns(self) -> int:
        """Airtime of the transmission."""
        return self.end_ns - self.start_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Transmission {self.frame.describe()} [{self.start_ns},{self.end_ns}]>"


class Channel:
    """Broadcast medium connecting all radios of one frequency band."""

    def __init__(
        self,
        sim: Simulator,
        propagation: LogNormalShadowing,
        timing: "PhyTiming",
        rngs: RngStreams,
        shadowing_mode: str = "per_frame",
        trace: Optional[TraceRecorder] = None,
        band: int = 0,
        air_latency_ns: int = 1_000,
        registry=None,
        cull_margin_db: Union[float, str, None] = None,
    ) -> None:
        if shadowing_mode not in SHADOWING_MODES:
            raise ValueError(
                f"shadowing_mode must be one of {SHADOWING_MODES}, got {shadowing_mode!r}"
            )
        self.sim = sim
        self.propagation = propagation
        self.timing = timing
        self.shadowing_mode = shadowing_mode
        #: Frequency band index.  Radios only interact when they share a
        #: Channel object, so non-overlapping bands are modeled as separate
        #: channels — matching the paper's floor where "only the ones using
        #: the same frequency band are considered".
        self.band = int(band)
        #: Propagation + CCA detection latency: a transmission becomes
        #: observable at other radios only after this delay.  Without it,
        #: two stations whose backoff counters expire in the same slot
        #: would serialize instead of colliding (zero-latency carrier
        #: sense), and DCF would be collision-free — wildly unphysical.
        #: 1 us approximates aCCATime/propagation at WLAN ranges.
        self.air_latency_ns = int(air_latency_ns)
        if self.air_latency_ns < 0:
            raise ValueError("air latency cannot be negative")
        # NB: "trace or ..." would discard an *empty* recorder (len == 0 is
        # falsy), so test identity explicitly.
        self.trace = trace if trace is not None else TraceRecorder()
        self.trace.bind_clock(lambda: sim.now)
        self._rngs = rngs
        #: Resolved culling margin in dB, or None for the exhaustive path.
        self.cull_margin_db = resolve_cull_margin_db(
            propagation.sigma_db, cull_margin_db
        )
        self._radios: List["Radio"] = []
        self._radios_by_id: Dict[int, "Radio"] = {}
        self._active: List[Transmission] = []
        #: Cached per-link shadowing offsets (``per_link`` mode only).
        self._link_shadowing_db = _PairCache()
        #: Cached deterministic mean received power per (tx, rx) pair.
        self._mean_rx_dbm_cache = _PairCache()
        #: Counters for diagnostics and tests.
        self.frames_sent = 0
        self.links_culled = 0
        if registry is not None:
            self.register_counters(registry)

    def register_counters(self, registry) -> None:
        """Expose medium-level counters under the ``channel`` prefix.

        Per-band channels share the prefix, so a multi-band network's
        snapshot reports medium-wide totals (``cull_margin_db`` included:
        with several bands the snapshot sums the per-band margins, so
        divide by ``len(network.channels)`` to recover the setting).
        """
        registry.register_source("channel", self.counters)

    def counters(self) -> Dict[str, float]:
        """Registry-source view of this band's counters.

        ``culled_links`` counts per-radio notifications skipped by
        below-floor culling; ``cull_margin_db`` is the resolved margin
        (``-1.0`` when culling is off).
        """
        return {
            "frames_sent": self.frames_sent,
            "active_transmissions": len(self._active),
            "radios": len(self._radios),
            "culled_links": self.links_culled,
            "cull_margin_db": (
                self.cull_margin_db if self.cull_margin_db is not None else -1.0
            ),
        }

    # ------------------------------------------------------------------
    # Topology management
    # ------------------------------------------------------------------
    def attach(self, radio: "Radio") -> None:
        """Register a radio with the medium.

        Mid-run attach contract: a radio attached while transmissions are
        in flight does **not** observe them — it receives no retroactive
        ``on_air_start`` (its CCA never saw the frame begin) and, because
        end-of-air is delivered only to radios keyed in the transmission's
        ``rx_power_mw``, no spurious ``on_air_end`` either.  It starts
        participating with the first transmission that begins after the
        attach.
        """
        if radio.radio_id in self._radios_by_id:
            raise ValueError(f"duplicate radio id {radio.radio_id}")
        self._radios.append(radio)
        self._radios_by_id[radio.radio_id] = radio

    @property
    def radios(self) -> List["Radio"]:
        """All attached radios."""
        return list(self._radios)

    def invalidate_link_shadowing(self, radio_id: int) -> int:
        """Drop cached per-link shadowing draws involving ``radio_id``.

        Only meaningful in ``per_link`` mode: a moved radio's old draws
        describe paths that no longer exist.  Returns how many entries
        were dropped.  The cache is indexed per radio, so this is
        O(degree of the radio), not O(all cached links).
        """
        return self._link_shadowing_db.invalidate(radio_id)

    def on_radio_moved(self, radio_id: int) -> None:
        """Invalidate everything position-dependent for ``radio_id``.

        Called by :meth:`repro.phy.radio.Radio.move_to`: drops the
        radio's cached mean-power entries (they encode the old distance)
        and its per-link shadowing draws.
        """
        self._mean_rx_dbm_cache.invalidate(radio_id)
        self._link_shadowing_db.invalidate(radio_id)

    @property
    def active_transmissions(self) -> List[Transmission]:
        """Transmissions currently in the air."""
        return list(self._active)

    # ------------------------------------------------------------------
    # Transmission lifecycle
    # ------------------------------------------------------------------
    def transmit(self, sender: "Radio", frame: "Frame") -> Transmission:
        """Put ``frame`` on the air from ``sender``; returns the record.

        Called by :meth:`repro.phy.radio.Radio.start_transmission` only.
        Radios whose mean received power sits ``cull_margin_db`` below
        both their noise floor and their carrier-sense threshold are
        skipped entirely (no draw, no ``rx_power_mw`` entry, no events).
        """
        duration = self.timing.frame_airtime_ns(frame)
        tx = Transmission(frame, sender, self.sim.now, self.sim.now + duration)
        self._active.append(tx)
        self.frames_sent += 1
        margin = self.cull_margin_db
        latency = self.air_latency_ns
        schedule = self.sim.schedule
        culled = 0
        for radio in self._radios:
            if radio is sender:
                continue
            if margin is not None:
                mean_dbm = self._mean_rx_dbm(sender, radio)
                config = radio.config
                if (
                    mean_dbm + margin < config.noise_floor_dbm
                    and mean_dbm + margin < config.cs_threshold_dbm
                ):
                    culled += 1
                    continue
            power_mw = self._received_power_mw(sender, radio, frame)
            tx.rx_power_mw[radio.radio_id] = power_mw
            if latency:
                schedule(latency, radio.on_air_start, tx, power_mw)
            else:
                radio.on_air_start(tx, power_mw)
        self.links_culled += culled
        if self.trace.wants("channel"):
            self.trace.record(
                "channel", "tx-start",
                frame=frame.describe(), sender=sender.radio_id, culled=culled,
            )
        self.sim.schedule(duration, self._end_transmission, tx)
        return tx

    def _end_transmission(self, tx: Transmission) -> None:
        """Remove a finished transmission and notify its observers.

        Only radios keyed in ``tx.rx_power_mw`` — the ones that received
        ``on_air_start`` — are notified.  Radios culled at transmit time
        and radios attached while the frame was in flight never hear
        about it (see :meth:`attach` for the mid-run attach contract).
        """
        self._active.remove(tx)
        if self.trace.wants("channel"):
            self.trace.record("channel", "tx-end", frame=tx.frame.describe())
        latency = self.air_latency_ns
        radios_by_id = self._radios_by_id
        for radio_id in tx.rx_power_mw:
            radio = radios_by_id[radio_id]
            if latency:
                self.sim.schedule(latency, radio.on_air_end, tx)
            else:
                radio.on_air_end(tx)
        tx.sender.on_own_tx_end(tx)

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def _mean_rx_dbm(self, sender: "Radio", receiver: "Radio") -> float:
        """Deterministic mean received power, cached per (tx, rx) pair.

        The cache assumes positions and transmit powers only change via
        :meth:`repro.phy.radio.Radio.move_to`, which invalidates the
        moved radio's entries through :meth:`on_radio_moved`.
        """
        key = (sender.radio_id, receiver.radio_id)
        mean = self._mean_rx_dbm_cache.get(key)
        if mean is None:
            dist = sender.position.distance_to(receiver.position)
            mean = self.propagation.mean_rx_dbm(sender.config.tx_power_dbm, dist)
            self._mean_rx_dbm_cache.put(key, mean)
        return mean

    def _link_rng(self, tx_id: int, rx_id: int):
        """The ordered pair's private shadowing generator.

        Seeded via ``derive_seed(root, "shadowing", band, tx, rx)``, so
        the stream depends only on the link's identity — never on how
        many draws other links consumed or whether they were culled.
        """
        return self._rngs.substream("shadowing", self.band, tx_id, rx_id)

    def _received_power_mw(self, sender: "Radio", receiver: "Radio", frame: "Frame") -> float:
        """Draw the received power of this frame at ``receiver``."""
        mean_dbm = self._mean_rx_dbm(sender, receiver)
        if self.shadowing_mode == "none":
            rx_dbm = mean_dbm
        elif self.shadowing_mode == "per_link":
            key = (sender.radio_id, receiver.radio_id)
            offset = self._link_shadowing_db.get(key)
            if offset is None:
                offset = self.propagation.shadowing_db(
                    self._link_rng(sender.radio_id, receiver.radio_id)
                )
                self._link_shadowing_db.put(key, offset)
            rx_dbm = mean_dbm + offset
        else:  # per_frame
            rx_dbm = mean_dbm + self.propagation.shadowing_db(
                self._link_rng(sender.radio_id, receiver.radio_id)
            )
        return dbm_to_mw(rx_dbm)
