"""Bianchi's saturated-DCF slot model for constant backoff windows.

For a network of ``n = c + 1`` saturated stations each drawing backoff
uniformly from a constant window of ``W`` slots, a station transmits in a
randomly chosen slot with probability::

    tau = 2 / (W + 1)

(the paper's simplification of Bianchi's fixed point for constant CW).
The renewal "slot" seen by a contender is then one of:

* an **empty** slot of length ``T0`` with probability ``1 - P_tr``,
* a **successful** exchange of length ``T_s`` with probability
  ``P_tr * P_s``,
* a **collision** of length ``T_c`` with probability ``P_tr (1 - P_s)``,

with ``P_tr = 1 - (1 - tau)^(c+1)`` and
``P_s = (c+1) tau (1 - tau)^c / P_tr`` (eqs. 6-7).  ``T_s`` and ``T_c``
follow eq. (8): ``T_s = T_HDR + T_payload + SIFS + T_ACK + DIFS`` and
``T_c = T_HDR + T_payload + DIFS`` (homogeneous payloads, so the longest
frame in a collision equals the average frame).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # hints only — keeps analytical import-independent of mac
    from repro.mac.timing import PhyTiming
    from repro.phy.rates import Rate


@dataclass(frozen=True)
class SlotBreakdown:
    """The pieces of the expected-slot computation (all times in ns)."""

    tau: float
    p_tr: float
    p_s: float
    t_empty_ns: float
    t_success_ns: float
    t_collision_ns: float

    @property
    def expected_slot_ns(self) -> float:
        """E[slot length] of eq. (5)'s denominator."""
        return (
            (1.0 - self.p_tr) * self.t_empty_ns
            + self.p_tr * self.p_s * self.t_success_ns
            + self.p_tr * (1.0 - self.p_s) * self.t_collision_ns
        )


class BianchiSlotModel:
    """Slot statistics of a constant-window saturated DCF network.

    Parameters
    ----------
    timing:
        PHY timing profile (shared with the simulator so model and
        simulation agree on every overhead term).
    data_rate / ack_rate:
        Rates for the payload and the acknowledgement.
    extra_header_bytes:
        Extra per-exchange on-air bytes (CO-MAP's announcement header is
        modelled by inflating ``T_HDR``); zero for plain DCF.
    """

    def __init__(
        self,
        timing: "PhyTiming",
        data_rate: "Rate",
        ack_rate: "Rate",
        extra_header_ns: int = 0,
    ) -> None:
        self.timing = timing
        self.data_rate = data_rate
        self.ack_rate = ack_rate
        self.extra_header_ns = int(extra_header_ns)

    @staticmethod
    def tau_for_window(window: int) -> float:
        """Per-slot transmission probability for constant window ``W``."""
        if window < 1:
            raise ValueError(f"window must be at least 1 slot, got {window}")
        return 2.0 / (window + 1.0)

    def t_success_ns(self, payload_bytes: int) -> float:
        """Eq. (8)'s ``T_s`` for one payload size."""
        return (
            self.timing.data_exchange_ns(self.data_rate, payload_bytes, self.ack_rate)
            + self.extra_header_ns
        )

    def t_collision_ns(self, payload_bytes: int) -> float:
        """Eq. (8)'s ``T_c`` for one payload size."""
        return self.timing.collision_ns(self.data_rate, payload_bytes) + self.extra_header_ns

    def data_airtime_ns(self, payload_bytes: int) -> float:
        """On-air time of the data frame alone (the model's ``T_i``)."""
        from repro.mac.frames import MAC_DATA_OVERHEAD_BYTES

        return (
            self.timing.preamble_ns
            + self.data_rate.airtime_ns(payload_bytes + MAC_DATA_OVERHEAD_BYTES)
            + self.extra_header_ns
        )

    def slot(self, window: int, contenders: int, payload_bytes: int) -> SlotBreakdown:
        """Full slot statistics for ``c = contenders`` and window ``W``."""
        if contenders < 0:
            raise ValueError("contender count cannot be negative")
        if payload_bytes <= 0:
            raise ValueError("payload must be positive")
        tau = self.tau_for_window(window)
        n = contenders + 1
        p_tr = 1.0 - (1.0 - tau) ** n
        if p_tr <= 0.0:
            raise ValueError("degenerate network: nobody ever transmits")
        p_s = n * tau * (1.0 - tau) ** contenders / p_tr
        return SlotBreakdown(
            tau=tau,
            p_tr=p_tr,
            p_s=p_s,
            t_empty_ns=float(self.timing.slot_ns),
            t_success_ns=self.t_success_ns(payload_bytes),
            t_collision_ns=self.t_collision_ns(payload_bytes),
        )

    def goodput_bps(self, window: int, contenders: int, payload_bytes: int) -> float:
        """Per-link saturation goodput without hidden terminals (bit/s).

        This is eq. (5) with ``h = 0``: the tagged station's success
        probability is ``tau (1 - tau)^c`` per slot.
        """
        breakdown = self.slot(window, contenders, payload_bytes)
        p_success_tagged = breakdown.tau * (1.0 - breakdown.tau) ** contenders
        payload_bits = payload_bytes * 8
        return p_success_tagged * payload_bits / (breakdown.expected_slot_ns * 1e-9)

    def slot_for_tau(self, tau: float, contenders: int, payload_bytes: int) -> SlotBreakdown:
        """Slot statistics for an externally supplied ``tau`` (BEB model)."""
        if not 0.0 < tau < 1.0:
            raise ValueError(f"tau must lie in (0, 1), got {tau}")
        n = contenders + 1
        p_tr = 1.0 - (1.0 - tau) ** n
        p_s = n * tau * (1.0 - tau) ** contenders / p_tr
        return SlotBreakdown(
            tau=tau,
            p_tr=p_tr,
            p_s=p_s,
            t_empty_ns=float(self.timing.slot_ns),
            t_success_ns=self.t_success_ns(payload_bytes),
            t_collision_ns=self.t_collision_ns(payload_bytes),
        )


class BebFixedPoint:
    """Bianchi's *full* DCF model: binary exponential backoff fixed point.

    For saturated stations with minimum window ``W0 = cw_min + 1``
    doubling over ``m`` stages, the per-slot transmission probability and
    the conditional collision probability satisfy the coupled equations

        tau(p) = 2 (1 - 2p) /
                 ((1 - 2p)(W0 + 1) + p W0 (1 - (2p)^m))
        p(tau) = 1 - (1 - tau)^c

    (Bianchi 2000, eqs. 7 and 9).  :meth:`solve` iterates them to a fixed
    point.  This complements the constant-window simplification the
    paper's eq. (5) uses — the DCF baseline in the simulator runs real
    BEB, so this is the model that predicts *its* goodput.
    """

    def __init__(self, slot_model: BianchiSlotModel, cw_min: int = 31,
                 cw_max: int = 1023) -> None:
        if cw_min < 1 or cw_max < cw_min:
            raise ValueError(f"invalid CW range [{cw_min}, {cw_max}]")
        self.slot_model = slot_model
        self.cw_min = cw_min
        self.cw_max = cw_max
        # Number of doubling stages: CWmax = 2^m (CWmin+1) - 1.
        self.stages = 0
        w = cw_min
        while w < cw_max:
            w = 2 * (w + 1) - 1
            self.stages += 1

    def tau_of_p(self, p: float) -> float:
        """Bianchi's tau(p) for the configured backoff stages."""
        if not 0.0 <= p < 1.0:
            raise ValueError(f"collision probability must lie in [0, 1), got {p}")
        w0 = self.cw_min + 1
        m = self.stages
        if m == 0 or p == 0.0:
            return 2.0 / (w0 + 1.0)
        if abs(2.0 * p - 1.0) < 1e-12:
            # Removable singularity at p = 1/2.
            return 2.0 / (w0 + 1.0 + w0 * m / 2.0)
        num = 2.0 * (1.0 - 2.0 * p)
        den = (1.0 - 2.0 * p) * (w0 + 1.0) + p * w0 * (1.0 - (2.0 * p) ** m)
        return num / den

    def solve(self, contenders: int, tolerance: float = 1e-10,
              max_iterations: int = 10_000) -> tuple:
        """Return the fixed point ``(tau, p)`` for ``c`` contenders."""
        if contenders < 0:
            raise ValueError("contender count cannot be negative")
        p = 0.0
        for _ in range(max_iterations):
            tau = self.tau_of_p(p)
            p_next = 1.0 - (1.0 - tau) ** contenders
            if abs(p_next - p) < tolerance:
                return tau, p_next
            # Damped iteration keeps the map contractive for large n.
            p = 0.5 * p + 0.5 * p_next
        raise RuntimeError("BEB fixed point did not converge")

    def goodput_bps(self, contenders: int, payload_bytes: int) -> float:
        """Per-link saturation goodput of BEB DCF (no hidden terminals)."""
        tau, _ = self.solve(contenders)
        slot = self.slot_model.slot_for_tau(tau, contenders, payload_bytes)
        p_success_tagged = tau * (1.0 - tau) ** contenders
        payload_bits = payload_bytes * 8
        return p_success_tagged * payload_bits / (slot.expected_slot_ns * 1e-9)
