"""The paper's hidden-terminal goodput model (eqs. 5-9).

A tagged station with ``c`` contenders and ``h`` hidden terminals
succeeds in a slot only if (a) it wins the slot against its contenders —
Bianchi's ``tau (1 - tau)^c`` — and (b) **none of its hidden terminals
transmits during the vulnerable window** around its frame.  The window
spans the hidden terminal's possible overlap: ``T_s + T_i`` (the
successful-exchange time plus the tagged frame's own airtime), which in
slot units is::

    k = (T_s + T_i) / E[slot length]                                (text)

so the survival factor is ``((1 - tau)^h)^k`` and (eq. 9)::

    P_s^i = tau (1 - tau)^c  *  ((1 - tau)^h)^k

Goodput follows eq. (5): ``S_i = P_s^i * L_i / E[slot length]``.

HTs do not lengthen the slot seen by contending nodes (they are, by
definition, not sensed), so ``E[slot]`` comes from the plain Bianchi
model over the ``c`` contenders.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytical.bianchi import BianchiSlotModel


@dataclass(frozen=True)
class GoodputBreakdown:
    """Intermediate quantities of one goodput evaluation (for inspection)."""

    tau: float
    expected_slot_ns: float
    vulnerable_slots: float
    p_success: float
    goodput_bps: float


class HtGoodputModel:
    """Evaluate eq. (5) for arbitrary (W, c, h, payload) combinations."""

    def __init__(self, slot_model: BianchiSlotModel) -> None:
        self.slot_model = slot_model

    def breakdown(
        self,
        window: int,
        contenders: int,
        hidden: int,
        payload_bytes: int,
        attacker_window: int = None,
        attacker_payload: int = None,
    ) -> GoodputBreakdown:
        """Full evaluation with intermediates exposed.

        With the default ``attacker_window=None`` this is the paper's
        homogeneous model: hidden terminals use the same window as the
        tagged station, so raising ``W`` slows attackers too.  Passing an
        explicit ``attacker_window`` decouples them — the survival factor
        then uses the attackers' own ``tau`` and expected slot (their own
        saturated cell of ``h`` nodes), which models *non-adaptive*
        hidden terminals that keep hammering regardless of the tagged
        station's settings.  The packet-size adaptation uses the
        decoupled form (see :class:`repro.core.adaptation.AdaptationTable`).
        """
        if hidden < 0:
            raise ValueError("hidden-terminal count cannot be negative")
        slot = self.slot_model.slot(window, contenders, payload_bytes)
        e_slot = slot.expected_slot_ns
        t_s = self.slot_model.t_success_ns(payload_bytes)
        t_i = self.slot_model.data_airtime_ns(payload_bytes)
        if hidden == 0:
            survival, k = 1.0, 0.0
        elif attacker_window is None:
            k = (t_s + t_i) / e_slot
            survival = ((1.0 - slot.tau) ** hidden) ** k
        else:
            a_payload = attacker_payload or payload_bytes
            a_slot = self.slot_model.slot(
                attacker_window, max(hidden - 1, 0), a_payload
            )
            k = (t_s + t_i) / a_slot.expected_slot_ns
            survival = ((1.0 - a_slot.tau) ** hidden) ** k
        p_success = slot.tau * (1.0 - slot.tau) ** contenders * survival
        payload_bits = payload_bytes * 8
        goodput = p_success * payload_bits / (e_slot * 1e-9)
        return GoodputBreakdown(
            tau=slot.tau,
            expected_slot_ns=e_slot,
            vulnerable_slots=k,
            p_success=p_success,
            goodput_bps=goodput,
        )

    def goodput_bps(
        self,
        window: int,
        contenders: int,
        hidden: int,
        payload_bytes: int,
        attacker_window: int = None,
        attacker_payload: int = None,
    ) -> float:
        """Per-link saturation goodput in bit/s under ``h`` hidden terminals."""
        return self.breakdown(
            window, contenders, hidden, payload_bytes,
            attacker_window=attacker_window, attacker_payload=attacker_payload,
        ).goodput_bps

    def goodput_curve(
        self, window: int, contenders: int, hidden: int, payloads
    ) -> list:
        """Goodput across a payload sweep — one Fig. 7 curve."""
        return [
            (payload, self.goodput_bps(window, contenders, hidden, payload))
            for payload in payloads
        ]
