"""Optimal (contention window, payload) search (Section IV-D3).

"To reduce the computation overhead on mobile devices, we calculate the
best packet configurations for different numbers of HTs and contending
nodes beforehand.  The results are recorded in a 2-dimension array" —
this module is that precomputation: an exhaustive grid search over the
configured CW and payload choices, maximizing the analytical goodput of
:class:`repro.analytical.ht_model.HtGoodputModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analytical.ht_model import HtGoodputModel


@dataclass(frozen=True)
class OptimalSetting:
    """The best configuration found for one (hidden, contenders) cell."""

    window: int
    payload_bytes: int
    predicted_goodput_bps: float


class SettingOptimizer:
    """Grid search over (W, payload) for each (h, c) cell, with caching."""

    def __init__(
        self,
        model: HtGoodputModel,
        cw_choices: Sequence[int],
        payload_choices: Sequence[int],
        attacker_window: int = None,
        attacker_payload: int = None,
    ) -> None:
        if not cw_choices or not payload_choices:
            raise ValueError("choice grids cannot be empty")
        self.model = model
        self.cw_choices = tuple(sorted(set(int(w) for w in cw_choices)))
        self.payload_choices = tuple(sorted(set(int(p) for p in payload_choices)))
        self.attacker_window = attacker_window
        self.attacker_payload = attacker_payload
        self._cache: Dict[Tuple[int, int], OptimalSetting] = {}

    def best(self, hidden: int, contenders: int) -> OptimalSetting:
        """Best (W, payload) for ``h`` hidden terminals and ``c`` contenders."""
        key = (int(hidden), int(contenders))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        best: OptimalSetting | None = None
        for window in self.cw_choices:
            for payload in self.payload_choices:
                goodput = self.model.goodput_bps(
                    window, key[1], key[0], payload,
                    attacker_window=self.attacker_window,
                    attacker_payload=self.attacker_payload,
                )
                if best is None or goodput > best.predicted_goodput_bps:
                    best = OptimalSetting(window, payload, goodput)
        assert best is not None
        self._cache[key] = best
        return best

    def table(self, max_hidden: int, max_contenders: int) -> List[List[OptimalSetting]]:
        """The paper's 2-D array: rows = hidden count, columns = contenders."""
        return [
            [self.best(h, c) for c in range(max_contenders + 1)]
            for h in range(max_hidden + 1)
        ]

    def render_table(self, max_hidden: int, max_contenders: int) -> str:
        """Human-readable (W, payload) matrix for reports and examples."""
        rows = ["h\\c " + "".join(f"{c:>14d}" for c in range(max_contenders + 1))]
        for h in range(max_hidden + 1):
            cells = [
                f"  W={s.window:<4d}L={s.payload_bytes:<5d}"[:14].rjust(14)
                for s in (self.best(h, c) for c in range(max_contenders + 1))
            ]
            rows.append(f"{h:<4d}" + "".join(cells))
        return "\n".join(rows)
