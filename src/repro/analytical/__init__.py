"""Analytical performance models (Section IV-D2, eqs. 5-9).

* :mod:`repro.analytical.bianchi` — Bianchi's constant-window slot model
  of the 802.11 DCF (the ideal-channel baseline the paper extends).
* :mod:`repro.analytical.ht_model` — the paper's extension accounting
  for hidden terminals via the ``((1 - tau)^h)^k`` survival factor.
* :mod:`repro.analytical.optimizer` — grid search for the optimal
  (contention window, payload size) per (hidden count, contender count),
  i.e. the precomputed 2-D array of Section IV-D3.
"""

from repro.analytical.bianchi import BianchiSlotModel, SlotBreakdown
from repro.analytical.ht_model import HtGoodputModel
from repro.analytical.optimizer import SettingOptimizer, OptimalSetting

__all__ = [
    "BianchiSlotModel",
    "SlotBreakdown",
    "HtGoodputModel",
    "SettingOptimizer",
    "OptimalSetting",
]
