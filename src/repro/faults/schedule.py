"""Declarative fault schedules (see ``docs/robustness.md``).

A :class:`FaultPlan` is an immutable, declarative description of every
fault to inject into one run: *what* (the spec class), *who* (a node
name), and *when* (absolute simulated nanoseconds).  Plans are plain
frozen dataclasses, so they pickle cleanly into parallel sweep tasks and
feed :func:`repro.util.rng.derive_seed`-style canonical encodings — the
same plan always realizes the same faults, bit for bit.

Window-based specs (outages, beacon loss, ACK bursts, …) are *active*
for ``start_ns <= now < start_ns + duration_ns``.  Point specs (map
expiry/corruption, churn) fire at their scheduled instant.  All
probabilistic specs draw from ``RngStreams.substream("fault", kind,
node)``, so fault randomness can never perturb backoff, shadowing, or
any other subsystem stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

#: Default location-service keep-alive period (20 ms), matching the
#: order of magnitude of beacon intervals in infrastructure WLANs.
DEFAULT_REPORT_INTERVAL_NS = 20_000_000


def _require_window(start_ns: int, duration_ns: int) -> None:
    if start_ns < 0:
        raise ValueError(f"start_ns cannot be negative, got {start_ns}")
    if duration_ns <= 0:
        raise ValueError(f"duration_ns must be positive, got {duration_ns}")


def _require_prob(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")


class _Window:
    """Mixin for window-based specs: ``active(now)`` membership test."""

    def active(self, now: int) -> bool:
        """True while ``now`` falls inside the fault window."""
        return self.start_ns <= now < self.start_ns + self.duration_ns


@dataclass(frozen=True)
class LocationOutage(_Window):
    """The node's location service produces no reports at all.

    Its keep-alives are suppressed, so with a ``location_ttl_ns``
    configured the node's entries (and every peer's view of it) age out
    and CO-MAP degrades to plain DCF until the window ends.
    """

    node: str
    start_ns: int
    duration_ns: int

    def __post_init__(self) -> None:
        _require_window(self.start_ns, self.duration_ns)


@dataclass(frozen=True)
class FrozenLocation(_Window):
    """Reports keep flowing but repeat the stale pre-window position.

    Freshness is maintained (no fallback), but the coordinates feeding
    eq. (3) silently stop tracking the node's true movement.
    """

    node: str
    start_ns: int
    duration_ns: int

    def __post_init__(self) -> None:
        _require_window(self.start_ns, self.duration_ns)


@dataclass(frozen=True)
class BeaconLoss(_Window):
    """Individual position beacons are dropped with ``drop_prob``."""

    node: str
    start_ns: int
    duration_ns: int
    drop_prob: float = 0.5

    def __post_init__(self) -> None:
        _require_window(self.start_ns, self.duration_ns)
        _require_prob("drop_prob", self.drop_prob)


@dataclass(frozen=True)
class LocationDrift(_Window):
    """Reported positions accumulate a linear bias of ``rate_mps``.

    The drift is deterministic (rate and heading are part of the spec):
    the published position is the window-start report displaced by
    ``rate_mps * elapsed`` along ``heading_deg``.
    """

    node: str
    start_ns: int
    duration_ns: int
    rate_mps: float = 1.0
    heading_deg: float = 0.0

    def __post_init__(self) -> None:
        _require_window(self.start_ns, self.duration_ns)
        if self.rate_mps < 0:
            raise ValueError(f"rate_mps cannot be negative, got {self.rate_mps}")


@dataclass(frozen=True)
class AckLossBurst(_Window):
    """ACKs addressed to the node are dropped at its receiver.

    Stresses the selective-repeat ARQ exactly where the paper motivates
    it: the data arrives, only the acknowledgement is lost.
    """

    node: str
    start_ns: int
    duration_ns: int
    drop_prob: float = 1.0

    def __post_init__(self) -> None:
        _require_window(self.start_ns, self.duration_ns)
        _require_prob("drop_prob", self.drop_prob)


@dataclass(frozen=True)
class AnnouncementLoss(_Window):
    """CO-MAP announcements are not decoded by the node.

    Covers both announcement implementations: separate header frames and
    embedded early-FCS announcements.  The node loses exposed-terminal
    opportunities it would otherwise have exploited.
    """

    node: str
    start_ns: int
    duration_ns: int
    drop_prob: float = 1.0

    def __post_init__(self) -> None:
        _require_window(self.start_ns, self.duration_ns)
        _require_prob("drop_prob", self.drop_prob)


@dataclass(frozen=True)
class CoMapExpiry:
    """At ``at_ns``, every entry of the node's co-occurrence map expires."""

    node: str
    at_ns: int

    def __post_init__(self) -> None:
        if self.at_ns < 0:
            raise ValueError(f"at_ns cannot be negative, got {self.at_ns}")


@dataclass(frozen=True)
class CoMapCorruption:
    """At ``at_ns``, stored verdicts flip with probability ``flip_prob``.

    An *allowed* entry becomes *denied* and vice versa — modelling a
    corrupted control-plane update rather than a clean loss.
    """

    node: str
    at_ns: int
    flip_prob: float = 1.0

    def __post_init__(self) -> None:
        if self.at_ns < 0:
            raise ValueError(f"at_ns cannot be negative, got {self.at_ns}")
        _require_prob("flip_prob", self.flip_prob)


@dataclass(frozen=True)
class NodeChurn:
    """The node leaves the network at ``leave_ns``, re-joins at ``rejoin_ns``."""

    node: str
    leave_ns: int
    rejoin_ns: int

    def __post_init__(self) -> None:
        if self.leave_ns < 0:
            raise ValueError(f"leave_ns cannot be negative, got {self.leave_ns}")
        if self.rejoin_ns <= self.leave_ns:
            raise ValueError(
                f"rejoin_ns ({self.rejoin_ns}) must come after "
                f"leave_ns ({self.leave_ns})"
            )


#: Specs that model the *location service* failing.  Their presence in a
#: plan activates the injector's periodic keep-alive ticker.
LOCATION_FAULTS = (LocationOutage, FrozenLocation, BeaconLoss, LocationDrift)

#: Specs filtered at the MAC receive path via ``fault_hooks``.
RX_FAULTS = (AckLossBurst, AnnouncementLoss)

FaultSpec = Union[
    LocationOutage,
    FrozenLocation,
    BeaconLoss,
    LocationDrift,
    AckLossBurst,
    AnnouncementLoss,
    CoMapExpiry,
    CoMapCorruption,
    NodeChurn,
]


@dataclass(frozen=True)
class FaultPlan:
    """Everything to inject into one run.

    An empty plan is valid and injects nothing: installing it changes no
    behavior (no ticker, no hooks, no scheduled events), which is what
    the faults-off golden-equivalence tests pin down.
    """

    events: Tuple[FaultSpec, ...] = ()
    #: Location-service keep-alive period.  Only used when the plan
    #: contains at least one location fault: the injector then *becomes*
    #: the location service, republishing every node's last report each
    #: interval (except where a spec suppresses, freezes, drops, or
    #: drifts it).
    report_interval_ns: int = DEFAULT_REPORT_INTERVAL_NS

    def __post_init__(self) -> None:
        if self.report_interval_ns <= 0:
            raise ValueError(
                f"report_interval_ns must be positive, got {self.report_interval_ns}"
            )
        object.__setattr__(self, "events", tuple(self.events))

    @property
    def has_location_faults(self) -> bool:
        """Does this plan model a failing location service?"""
        return any(isinstance(event, LOCATION_FAULTS) for event in self.events)

    def for_node(self, name: str) -> Tuple[FaultSpec, ...]:
        """All specs targeting one node, in plan order."""
        return tuple(event for event in self.events if event.node == name)

    @property
    def node_names(self) -> Tuple[str, ...]:
        """Sorted names of every node the plan touches."""
        return tuple(sorted({event.node for event in self.events}))
