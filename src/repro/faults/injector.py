"""Deterministic, schedule-driven fault injection.

The :class:`FaultInjector` turns a declarative
:class:`repro.faults.schedule.FaultPlan` into concrete simulator events
and MAC/network hooks:

* **Location-service faults** run through a periodic *keep-alive
  ticker*.  When the plan contains any location fault the injector
  becomes the location service: each ``report_interval_ns`` it
  republishes every CO-MAP node's last reported position — except where
  a spec suppresses (outage), repeats stale coordinates (frozen), drops
  (beacon loss), or biases (drift) the report.  Without keep-alives a
  configured ``location_ttl_ns`` would age *healthy* nodes into
  fallback too.
* **Control-plane faults** hook the MAC receive path (``fault_hooks``)
  for ACK and announcement loss, and schedule point events for
  co-occurrence map expiry/corruption.
* **Churn** schedules :meth:`Network.detach_node` /
  :meth:`Network.reattach_node` pairs.

Determinism: every probabilistic decision draws from
``RngStreams.substream("fault", kind, node_name)`` — content-addressed
streams that exist only because the plan asked for them, so runs with
faults disabled (or an empty plan) consume zero extra randomness and
stay bit-identical to runs without an injector.  Probabilities >= 1
short-circuit without consuming a draw, so raising a drop probability
to certainty cannot shift later draws.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.faults.schedule import (
    AckLossBurst,
    AnnouncementLoss,
    BeaconLoss,
    CoMapCorruption,
    CoMapExpiry,
    FaultPlan,
    FrozenLocation,
    LocationDrift,
    LocationOutage,
    NodeChurn,
)
from repro.mac.frames import FrameType
from repro.util.geometry import Point


class FaultInjector:
    """Realizes one :class:`FaultPlan` against one finalized network."""

    def __init__(self, network, plan: FaultPlan) -> None:
        if not network._finalized:
            raise RuntimeError("install faults after Network.finalize()")
        for name in plan.node_names:
            if name not in network.nodes_by_name:
                raise ValueError(f"fault plan targets unknown node {name!r}")
        self.network = network
        self.plan = plan
        self.sim = network.sim
        self._installed = False
        self._counters: Dict[str, int] = {
            "reports_suppressed": 0,
            "reports_frozen": 0,
            "reports_dropped": 0,
            "drift_applied": 0,
            "acks_dropped": 0,
            "announcements_dropped": 0,
            "comap_entries_expired": 0,
            "comap_entries_corrupted": 0,
            "churn_leaves": 0,
            "churn_joins": 0,
        }
        # Per-node spec indexes, keyed the way each hook needs them.
        self._location_specs: Dict[str, Tuple] = {}
        self._ack_specs: Dict[int, Tuple[AckLossBurst, ...]] = {}
        self._announce_specs: Dict[int, Tuple[AnnouncementLoss, ...]] = {}
        self._names_by_id: Dict[int, str] = {}
        #: Window-start reported position per active drift spec (lazily
        #: captured at the first tick inside the window, so the drift
        #: biases whatever the node last reported, not its true spot).
        self._drift_base: Dict[Tuple[str, int], Point] = {}

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self) -> None:
        """Register counters/hooks and schedule every planned fault."""
        if self._installed:
            raise RuntimeError("fault plan already installed")
        self._installed = True
        # Counters are registered even for an empty plan, so manifests
        # always show the faults/ namespace (at zero) once an injector
        # is attached — "no faults fired" is then an explicit statement.
        self.network.registry.register_source("faults", self._read_counters)

        for name in self.plan.node_names:
            node = self.network.nodes_by_name[name]
            specs = self.plan.for_node(name)
            location = tuple(
                s
                for s in specs
                if isinstance(
                    s, (LocationOutage, FrozenLocation, BeaconLoss, LocationDrift)
                )
            )
            if location:
                self._location_specs[name] = location
            acks = tuple(s for s in specs if isinstance(s, AckLossBurst))
            announces = tuple(s for s in specs if isinstance(s, AnnouncementLoss))
            if acks:
                self._ack_specs[node.node_id] = acks
            if announces:
                self._announce_specs[node.node_id] = announces
            if acks or announces:
                node.mac.fault_hooks = self
                self._names_by_id[node.node_id] = name
            for spec in specs:
                if isinstance(spec, CoMapExpiry):
                    self.sim.schedule_at(
                        spec.at_ns, lambda s=spec: self._expire_co_map(s)
                    )
                elif isinstance(spec, CoMapCorruption):
                    self.sim.schedule_at(
                        spec.at_ns, lambda s=spec: self._corrupt_co_map(s)
                    )
                elif isinstance(spec, NodeChurn):
                    self.sim.schedule_at(
                        spec.leave_ns, lambda s=spec: self._leave(s)
                    )
                    self.sim.schedule_at(
                        spec.rejoin_ns, lambda s=spec: self._rejoin(s)
                    )

        if self.plan.has_location_faults:
            self.network.fault_filter = self
            self.sim.schedule(self.plan.report_interval_ns, self._tick)

    def _read_counters(self) -> Dict[str, int]:
        return dict(self._counters)

    @property
    def counters(self) -> Dict[str, int]:
        """Snapshot of the injector's fault counters."""
        return dict(self._counters)

    def _rng(self, kind: str, node: str):
        return self.network.rngs.substream("fault", kind, node)

    def _trace(self, event: str, **fields) -> None:
        if self.network.trace.wants("faults"):
            self.network.trace.record("faults", event, **fields)

    # ------------------------------------------------------------------
    # Location-service faults (keep-alive ticker + report filter)
    # ------------------------------------------------------------------
    def _active(self, name: str, cls, now: int):
        for spec in self._location_specs.get(name, ()):
            if isinstance(spec, cls) and spec.active(now):
                return spec
        return None

    def allow_report(self, node, now: int) -> bool:
        """Veto scenario-driven position reports under active faults.

        During outage/frozen/drift windows the injector owns the node's
        reporting (the ticker publishes what the faulty service would);
        under beacon loss, scenario reports face the same Bernoulli drop
        as keep-alives.
        """
        name = node.name
        if (
            self._active(name, LocationOutage, now) is not None
            or self._active(name, FrozenLocation, now) is not None
            or self._active(name, LocationDrift, now) is not None
        ):
            self._counters["reports_suppressed"] += 1
            self._trace("report_suppressed", node=node.node_id)
            return False
        beacon = self._active(name, BeaconLoss, now)
        if beacon is not None and self._bernoulli("beacon", name, beacon.drop_prob):
            self._counters["reports_dropped"] += 1
            self._trace("report_dropped", node=node.node_id)
            return False
        return True

    def _bernoulli(self, kind: str, name: str, prob: float) -> bool:
        if prob <= 0.0:
            return False
        if prob >= 1.0:
            return True  # certainty never consumes a draw
        return self._rng(kind, name).random() < prob

    def _tick(self) -> None:
        """One keep-alive pass over every attached CO-MAP node."""
        now = self.sim.now
        net = self.network
        for node_id in sorted(net.nodes):
            node = net.nodes[node_id]
            if node.agent is None or node_id in net._detached:
                continue
            reported = net._reported_positions.get(node_id)
            if reported is None:
                continue
            name = node.name
            if self._active(name, LocationOutage, now) is not None:
                self._counters["reports_suppressed"] += 1
                self._trace("report_suppressed", node=node_id)
                continue
            drift = self._active(name, LocationDrift, now)
            if drift is not None:
                net.publish_report(node, self._drifted(drift, reported, now))
                self._counters["drift_applied"] += 1
                self._trace("report_drifted", node=node_id)
                continue
            frozen = self._active(name, FrozenLocation, now)
            if frozen is not None:
                # Refresh freshness with the stale pre-window position.
                net.publish_report(node, reported)
                self._counters["reports_frozen"] += 1
                self._trace("report_frozen", node=node_id)
                continue
            beacon = self._active(name, BeaconLoss, now)
            if beacon is not None and self._bernoulli(
                "beacon", name, beacon.drop_prob
            ):
                self._counters["reports_dropped"] += 1
                self._trace("report_dropped", node=node_id)
                continue
            net.publish_report(node, reported)  # healthy keep-alive
        self.sim.schedule(self.plan.report_interval_ns, self._tick)

    def _drifted(self, spec: LocationDrift, reported: Point, now: int) -> Point:
        import math

        key = (spec.node, spec.start_ns)
        base = self._drift_base.get(key)
        if base is None:
            base = self._drift_base[key] = reported
        elapsed_s = (now - spec.start_ns) / 1e9
        distance = spec.rate_mps * elapsed_s
        heading = math.radians(spec.heading_deg)
        return Point(
            base.x + distance * math.cos(heading),
            base.y + distance * math.sin(heading),
        )

    # ------------------------------------------------------------------
    # Control-plane faults (MAC receive hooks + scheduled map damage)
    # ------------------------------------------------------------------
    def drop_rx(self, node_id: int, frame) -> bool:
        """``DcfMac.on_frame_received`` hook: lose the frame entirely."""
        if frame.kind is not FrameType.ACK or frame.dst != node_id:
            return False
        now = self.sim.now
        for spec in self._ack_specs.get(node_id, ()):
            if spec.active(now):
                name = self._names_by_id[node_id]
                if self._bernoulli("ack", name, spec.drop_prob):
                    self._counters["acks_dropped"] += 1
                    self._trace("ack_dropped", node=node_id, seq=frame.seq)
                    return True
        return False

    def drop_announcement(self, node_id: int, frame) -> bool:
        """``CoMapMac.on_header_overheard`` hook: lose the announcement."""
        now = self.sim.now
        for spec in self._announce_specs.get(node_id, ()):
            if spec.active(now):
                name = self._names_by_id[node_id]
                if self._bernoulli("announce", name, spec.drop_prob):
                    self._counters["announcements_dropped"] += 1
                    self._trace("announcement_dropped", node=node_id)
                    return True
        return False

    def _expire_co_map(self, spec: CoMapExpiry) -> None:
        agent = self.network.nodes_by_name[spec.node].agent
        if agent is None:
            return
        expired = agent.co_map.entry_count
        agent.co_map.clear()
        self._counters["comap_entries_expired"] += expired
        self._trace("co_map_expired", node=spec.node, entries=expired)

    def _corrupt_co_map(self, spec: CoMapCorruption) -> None:
        agent = self.network.nodes_by_name[spec.node].agent
        if agent is None:
            return
        flipped = agent.co_map.corrupt(
            self._rng("corrupt", spec.node), spec.flip_prob
        )
        self._counters["comap_entries_corrupted"] += flipped
        self._trace("co_map_corrupted", node=spec.node, entries=flipped)

    # ------------------------------------------------------------------
    # Churn
    # ------------------------------------------------------------------
    def _leave(self, spec: NodeChurn) -> None:
        node = self.network.nodes_by_name[spec.node]
        self.network.detach_node(node)
        self._counters["churn_leaves"] += 1
        self._trace("node_left", node=node.node_id)

    def _rejoin(self, spec: NodeChurn) -> None:
        node = self.network.nodes_by_name[spec.node]
        self.network.reattach_node(node)
        self._counters["churn_joins"] += 1
        self._trace("node_rejoined", node=node.node_id)
