"""Deterministic fault injection for robustness experiments.

See ``docs/robustness.md`` for the fault taxonomy, the determinism
guarantees, and how CO-MAP degrades gracefully while faults are active.
"""

from repro.faults.injector import FaultInjector
from repro.faults.schedule import (
    DEFAULT_REPORT_INTERVAL_NS,
    AckLossBurst,
    AnnouncementLoss,
    BeaconLoss,
    CoMapCorruption,
    CoMapExpiry,
    FaultPlan,
    FaultSpec,
    FrozenLocation,
    LocationDrift,
    LocationOutage,
    NodeChurn,
)

__all__ = [
    "AckLossBurst",
    "AnnouncementLoss",
    "BeaconLoss",
    "CoMapCorruption",
    "CoMapExpiry",
    "DEFAULT_REPORT_INTERVAL_NS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FrozenLocation",
    "LocationDrift",
    "LocationOutage",
    "NodeChurn",
]
