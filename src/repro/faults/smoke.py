"""CI fault-smoke entry point (``python -m repro.faults.smoke``).

Runs a short fault-injected sweep — a location-report outage plus an
ACK-loss burst on the exposed-terminal topology — across a small worker
pool, then asserts the robustness contract end to end:

* every task completed (zero aborts: the manifest's ``failures`` list
  exists and is empty),
* the injected faults actually fired (``faults/`` counters in the
  manifest are non-zero),
* the trace artifact contains the sweep's task events.

Exit status 0 on success, 1 with a diagnostic on any violation.  The
manifest and trace JSONL land in ``--out`` for artifact upload.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.experiments.parallel import SweepTask, run_tasks
from repro.obs import manifest as obs_manifest
from repro.obs.counters import global_registry
from repro.obs.trace_io import dump_jsonl
from repro.sim.trace import global_recorder

#: Faulted node / schedule used by the smoke sweep (also read by tests).
#: The clients are the data transmitters in this topology, so the ACK
#: burst targets a client (ACKs flow AP -> client).
OUTAGE_NODE = "C1"
ACK_NODE = "C2"
FAULT_START_NS = 10_000_000
FAULT_DURATION_NS = 60_000_000


def smoke_task(seed: int = 0, duration_s: float = 0.1) -> dict:
    """One fault-injected exposed-terminal run (module-level: pickles).

    Returns per-flow goodput plus the injector's counters, and merges
    the fault counters into the process-global registry so they survive
    the trip back from a pool worker into the sweep manifest.
    """
    from repro.experiments.params import testbed_params
    from repro.experiments.topologies import exposed_terminal_topology
    from repro.faults import AckLossBurst, FaultPlan, LocationOutage

    built = exposed_terminal_topology(
        "comap", c2_x=20.0, seed=seed, params=testbed_params()
    )
    net = built.network
    plan = FaultPlan(
        events=(
            LocationOutage(
                node=OUTAGE_NODE,
                start_ns=FAULT_START_NS,
                duration_ns=FAULT_DURATION_NS,
            ),
            AckLossBurst(
                node=ACK_NODE,
                start_ns=FAULT_START_NS,
                duration_ns=FAULT_DURATION_NS,
            ),
        )
    )
    injector = net.install_faults(plan)
    results = net.run(duration_s)
    counters = injector.counters
    registry = global_registry()
    for name, value in sorted(counters.items()):
        if value:
            registry.counter(f"faults/{name}").inc(value)
    return {
        "per_flow_mbps": {
            f"{src}->{dst}": mbps
            for (src, dst), mbps in sorted(results.per_flow_mbps().items())
        },
        "fault_counters": counters,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="fault-artifacts", help="artifact output directory"
    )
    parser.add_argument("--jobs", type=int, default=2, help="pool worker count")
    parser.add_argument(
        "--duration-s", type=float, default=0.1, help="per-run simulated seconds"
    )
    args = parser.parse_args(argv)
    os.makedirs(args.out, exist_ok=True)

    recorder = global_recorder()
    recorder.enable("sweep")
    tasks = [
        SweepTask(
            fn=smoke_task,
            kwargs={"seed": seed, "duration_s": args.duration_s},
            key=("fault_smoke", seed),
        )
        for seed in range(4)
    ]
    with obs_manifest.manifest_sink(args.out):
        results = run_tasks(
            tasks, jobs=args.jobs, label="fault_smoke", on_error="record"
        )

    dump_jsonl(
        recorder.events(),
        os.path.join(args.out, "fault_smoke.trace.jsonl"),
        meta={"label": "fault_smoke"},
    )

    problems = []
    if any(result is None for result in results):
        problems.append(f"task aborts: {sum(r is None for r in results)}")

    manifest_path = None
    for name in sorted(os.listdir(args.out)):
        if name.endswith(".manifest.json"):
            manifest_path = os.path.join(args.out, name)
    if manifest_path is None:
        problems.append("no manifest written")
    else:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        obs_manifest.validate_manifest(manifest)
        failures = manifest.get("failures")
        if failures is None:
            problems.append("manifest lacks the failures field")
        elif failures:
            problems.append(f"manifest records {len(failures)} task failures")
        fault_counters = {
            key: value
            for key, value in manifest.get("counters", {}).items()
            if key.startswith("faults/")
        }
        if not fault_counters:
            problems.append("manifest records no faults/ counters")
        elif not any(fault_counters.values()):
            problems.append(f"no fault fired: {fault_counters}")
        else:
            print(f"injected faults recorded in manifest: {fault_counters}")

    for index, result in enumerate(results):
        if result is not None and index == 0:
            print(f"sample result: {json.dumps(result)}")
    if problems:
        for problem in problems:
            print(f"FAULT-SMOKE FAILURE: {problem}", file=sys.stderr)
        return 1
    print(f"fault smoke passed: {len(results)} tasks, artifacts in {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
