"""Named, independent random-number streams.

A discrete-event simulation is only debuggable when it is reproducible.
Reproducibility breaks as soon as two unrelated consumers (say, backoff
draws and shadowing draws) interleave their pulls from a single generator:
adding one extra packet perturbs every later draw everywhere.

:class:`RngStreams` gives each consumer its own :class:`numpy.random.Generator`
derived from a single root seed via ``SeedSequence.spawn``-style keying, so

* the same root seed always reproduces the same run, and
* changes in one subsystem's draw count never perturb another subsystem.
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np


class RngStreams:
    """A family of independent RNG streams derived from one root seed.

    Streams are addressed by string name (and optionally extra integer
    keys, e.g. a node id) and created lazily::

        rngs = RngStreams(seed=7)
        backoff = rngs.stream("backoff", node_id)
        shadowing = rngs.stream("shadowing")

    Requesting the same name/keys twice returns the *same* generator
    object, so stateful consumption continues where it left off.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[tuple, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this family was built from."""
        return self._seed

    def stream(self, name: str, *keys: int) -> np.random.Generator:
        """Return the generator for ``(name, *keys)``, creating it on demand."""
        key = (name,) + tuple(int(k) for k in keys)
        gen = self._streams.get(key)
        if gen is None:
            # Deterministic child seed: hash the textual key together with
            # the root seed through SeedSequence entropy mixing.
            entropy = [self._seed] + [ord(c) for c in name] + list(key[1:])
            gen = np.random.default_rng(np.random.SeedSequence(entropy))
            self._streams[key] = gen
        return gen

    def spawn(self, offset: int) -> "RngStreams":
        """Return a new independent family (for replicated experiment runs)."""
        return RngStreams(seed=self._seed * 1_000_003 + offset)

    def known_streams(self) -> Iterable[tuple]:
        """Names of all streams created so far (diagnostic aid)."""
        return tuple(self._streams.keys())
