"""Named, independent random-number streams and seed derivation.

A discrete-event simulation is only debuggable when it is reproducible.
Reproducibility breaks as soon as two unrelated consumers (say, backoff
draws and shadowing draws) interleave their pulls from a single generator:
adding one extra packet perturbs every later draw everywhere.

:class:`RngStreams` gives each consumer its own :class:`numpy.random.Generator`
derived from a single root seed via ``SeedSequence.spawn``-style keying, so

* the same root seed always reproduces the same run, and
* changes in one subsystem's draw count never perturb another subsystem.

:func:`derive_seed` is the content-addressed counterpart: a SHA-256
derivation over an arbitrary key tuple, stable across processes and
platforms.  The parallel sweep executor keys per-task seeds with it, and
:meth:`RngStreams.substream` keys per-(transmitter, receiver) shadowing
generators with it — the property that lets the channel *skip* a draw
for one link without perturbing any other link's randomness.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any, Dict, Iterable

import numpy as np

_SEED_BITS = 63


def derive_seed(base_seed: int, *key: Any) -> int:
    """A collision-free child seed from ``(base_seed, *key)``.

    The key tuple is canonically encoded and hashed with SHA-256, then
    folded to a non-negative 63-bit integer.  Unlike ``hash()`` this is
    stable across processes, platforms, and Python versions, and unlike
    arithmetic schemes (``seed + 1000 * rep``) distinct keys cannot
    collide for any realistic grid size (a collision needs ~2^31 keys).
    """
    payload = _canonical((int(base_seed),) + tuple(key))
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") & ((1 << _SEED_BITS) - 1)


def derive_seeds(base_seed: int, *key_prefix: Any, keys: Iterable[Any]) -> np.ndarray:
    """Batched :func:`derive_seed`: one child seed per element of ``keys``.

    Computes ``derive_seed(base_seed, *key_prefix, k)`` for every ``k``
    in ``keys`` and returns them as a ``uint64`` array.  The shared
    prefix is canonically encoded once, so deriving a whole row of
    per-link seeds (the vector channel backend's
    ``("shadowing", band, tx, rx)`` keys for one transmitter) costs one
    SHA-256 per element but only one prefix encoding.  Bit-identical to
    the scalar derivation element for element — pinned by the property
    tests in ``tests/test_vector_kernel.py``.
    """
    prefix = ",".join(
        _canon_str(v) for v in (int(base_seed),) + tuple(key_prefix)
    )
    mask = (1 << _SEED_BITS) - 1
    out = [
        int.from_bytes(
            hashlib.sha256(f"t:[{prefix},{_canon_str(k)}]".encode("utf-8")).digest()[:8],
            "big",
        )
        & mask
        for k in keys
    ]
    return np.asarray(out, dtype=np.uint64)


def _canonical(value: Any) -> bytes:
    """A byte encoding of ``value`` that is stable across runs/platforms."""
    return _canon_str(value).encode("utf-8")


def _canon_str(value: Any) -> str:
    if isinstance(value, bool):  # before int: bool is an int subclass
        return f"b:{value}"
    if isinstance(value, int):
        return f"i:{value}"
    if isinstance(value, float):
        # repr() is the shortest round-trip form — identical on every
        # IEEE-754 platform supported by CPython >= 3.1.
        return f"f:{value!r}"
    if isinstance(value, str):
        return f"s:{len(value)}:{value}"
    if value is None:
        return "n"
    if isinstance(value, (list, tuple)):
        inner = ",".join(_canon_str(v) for v in value)
        return f"t:[{inner}]"
    if isinstance(value, dict):
        inner = ",".join(
            f"{_canon_str(k)}={_canon_str(v)}" for k, v in sorted(value.items())
        )
        return f"d:{{{inner}}}"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        body = {f.name: getattr(value, f.name) for f in dataclasses.fields(value)}
        return f"dc:{type(value).__qualname__}:{_canon_str(body)}"
    if callable(value):
        module = getattr(value, "__module__", "?")
        name = getattr(value, "__qualname__", repr(value))
        return f"fn:{module}.{name}"
    if hasattr(value, "__dict__"):
        # Plain config objects (e.g. error models, RateTable): class name
        # plus instance attributes.
        return f"obj:{type(value).__qualname__}:{_canon_str(vars(value))}"
    raise TypeError(
        f"cannot canonically encode {type(value).__qualname__!r} for "
        f"seed/cache derivation"
    )


class RngStreams:
    """A family of independent RNG streams derived from one root seed.

    Streams are addressed by string name (and optionally extra integer
    keys, e.g. a node id) and created lazily::

        rngs = RngStreams(seed=7)
        backoff = rngs.stream("backoff", node_id)
        shadowing = rngs.stream("shadowing")

    Requesting the same name/keys twice returns the *same* generator
    object, so stateful consumption continues where it left off.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[tuple, np.random.Generator] = {}
        self._substreams: Dict[tuple, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this family was built from."""
        return self._seed

    def stream(self, name: str, *keys: int) -> np.random.Generator:
        """Return the generator for ``(name, *keys)``, creating it on demand."""
        key = (name,) + tuple(int(k) for k in keys)
        gen = self._streams.get(key)
        if gen is None:
            # Deterministic child seed: hash the textual key together with
            # the root seed through SeedSequence entropy mixing.
            entropy = [self._seed] + [ord(c) for c in name] + list(key[1:])
            gen = np.random.default_rng(np.random.SeedSequence(entropy))
            self._streams[key] = gen
        return gen

    def substream(self, name: str, *keys: Any) -> np.random.Generator:
        """A counter-based generator for ``(name, *keys)``, created on demand.

        Unlike :meth:`stream` — whose child seeds come from SeedSequence
        entropy mixing — a substream's seed is
        ``derive_seed(root_seed, name, *keys)``: a content-addressed
        SHA-256 derivation that depends only on the key's *identity*.
        Substreams therefore stay independent of creation order and of
        how many other substreams exist, which is what lets hot-path
        consumers (the channel's per-link shadowing draws) skip entire
        substreams without perturbing the rest of the run.

        Requesting the same key twice returns the *same* generator, so
        stateful consumption continues where it left off.
        """
        key = (name,) + keys
        gen = self._substreams.get(key)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self._seed, name, *keys))
            self._substreams[key] = gen
        return gen

    def spawn(self, offset: int) -> "RngStreams":
        """Return a new independent family (for replicated experiment runs)."""
        return RngStreams(seed=self._seed * 1_000_003 + offset)

    def known_streams(self) -> Iterable[tuple]:
        """Names of all streams created so far (diagnostic aid)."""
        return tuple(self._streams.keys()) + tuple(self._substreams.keys())
