"""Statistics helpers for experiment evaluation.

The paper reports results as empirical CDFs of per-link goodput
(Figs. 9 and 10), mean goodput gains (77.5 % for ET scenarios, 38.5 % for
HT networks) and per-position goodput curves.  This module provides those
aggregations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np


class EmpiricalCdf:
    """Empirical cumulative distribution function over a sample set.

    Mirrors the "Empirical CDF" panels of Figs. 9/10: ``F(x)`` is the
    fraction of samples ``<= x``.
    """

    def __init__(self, samples: Iterable[float]) -> None:
        data = sorted(float(s) for s in samples)
        if not data:
            raise ValueError("EmpiricalCdf requires at least one sample")
        self._samples = data

    @property
    def samples(self) -> Sequence[float]:
        """The sorted underlying samples."""
        return tuple(self._samples)

    def __len__(self) -> int:
        return len(self._samples)

    def evaluate(self, x: float) -> float:
        """Return ``F(x)``, the fraction of samples less than or equal to x."""
        lo, hi = 0, len(self._samples)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._samples[mid] <= x:
                lo = mid + 1
            else:
                hi = mid
        return lo / len(self._samples)

    def quantile(self, q: float) -> float:
        """Return the ``q``-quantile (0 <= q <= 1) of the samples."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be within [0, 1], got {q}")
        if q == 0.0:
            return self._samples[0]
        idx = int(np.ceil(q * len(self._samples))) - 1
        return self._samples[max(idx, 0)]

    def mean(self) -> float:
        """Arithmetic mean of the samples."""
        return float(np.mean(self._samples))

    def median(self) -> float:
        """Median of the samples."""
        return self.quantile(0.5)

    def as_plot_series(self) -> List[tuple]:
        """Return ``(x, F(x))`` pairs suitable for step plotting/printing."""
        n = len(self._samples)
        return [(x, (i + 1) / n) for i, x in enumerate(self._samples)]


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    Equals 1.0 when all links obtain identical goodput and approaches
    ``1/n`` under complete starvation of all but one link.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("fairness of an empty set is undefined")
    denom = arr.size * float(np.sum(arr**2))
    if denom == 0.0:
        return 1.0
    return float(np.sum(arr)) ** 2 / denom


def mean_gain(baseline: Sequence[float], improved: Sequence[float]) -> float:
    """Relative gain of mean(improved) over mean(baseline), e.g. 0.775 = +77.5 %."""
    base_values = list(baseline)
    improved_values = list(improved)
    if not base_values or not improved_values:
        raise ValueError("mean_gain needs at least one sample on each side")
    base = float(np.mean(base_values))
    if base <= 0.0:
        raise ValueError("baseline mean must be positive to compute a gain")
    return float(np.mean(improved_values)) / base - 1.0


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a sample set."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.count} mean={self.mean:.3f} std={self.std:.3f} "
            f"min={self.minimum:.3f} med={self.median:.3f} max={self.maximum:.3f}"
        )


def summarize(values: Iterable[float]) -> Summary:
    """Build a :class:`Summary` from raw samples."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample set")
    return Summary(
        count=int(arr.size),
        mean=float(np.mean(arr)),
        std=float(np.std(arr)),
        minimum=float(np.min(arr)),
        median=float(np.median(arr)),
        maximum=float(np.max(arr)),
    )


@dataclass(frozen=True)
class ConfidenceInterval:
    """Mean with a symmetric Student-t confidence interval."""

    mean: float
    half_width: float
    confidence: float
    count: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """True when ``value`` lies inside the interval."""
        return self.low <= value <= self.high

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.mean:.3f} ± {self.half_width:.3f} "
            f"({self.confidence * 100:.0f}% CI, n={self.count})"
        )


def confidence_interval(
    samples: Sequence[float], confidence: float = 0.95
) -> ConfidenceInterval:
    """Student-t confidence interval for the mean of repeated runs.

    Experiment runners repeat every configuration with independent seeds;
    this is the standard way to report those replicates (the paper runs
    each simulation "10 times and the average results are recorded").
    """
    from scipy import stats as scipy_stats

    data = np.asarray(list(samples), dtype=float)
    if data.size < 2:
        raise ValueError("a confidence interval needs at least two samples")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie strictly between 0 and 1")
    mean = float(np.mean(data))
    sem = float(np.std(data, ddof=1)) / (data.size ** 0.5)
    t_value = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df=data.size - 1))
    return ConfidenceInterval(
        mean=mean,
        half_width=t_value * sem,
        confidence=confidence,
        count=int(data.size),
    )


def cdf_table(samples_by_label: Dict[str, Sequence[float]], points: int = 10) -> str:
    """Render aligned CDF columns for several labelled sample sets.

    Used by benchmark harnesses to print Fig. 9/10-style comparisons.
    """
    labels = list(samples_by_label)
    cdfs = {label: EmpiricalCdf(samples_by_label[label]) for label in labels}
    lines = ["quantile  " + "  ".join(f"{label:>14s}" for label in labels)]
    for i in range(1, points + 1):
        q = i / points
        row = f"{q:8.2f}  " + "  ".join(
            f"{cdfs[label].quantile(q):14.3f}" for label in labels
        )
        lines.append(row)
    return "\n".join(lines)
