"""Shared utilities: unit conversions, RNG streams, statistics, geometry.

These helpers are deliberately dependency-light; everything above them
(`repro.phy`, `repro.mac`, ...) builds on these primitives.
"""

from repro.util.units import (
    dbm_to_mw,
    mw_to_dbm,
    db_to_ratio,
    ratio_to_db,
    MICROSECOND,
    MILLISECOND,
    SECOND,
    ns_to_s,
    s_to_ns,
)
from repro.util.hotpath import (
    HOTPATH_ENV,
    hotpath_enabled,
    hotpath_forced,
    set_hotpath,
)
from repro.util.rng import RngStreams
from repro.util.stats import (
    EmpiricalCdf,
    jain_fairness,
    mean_gain,
    summarize,
)
from repro.util.geometry import Point, distance

__all__ = [
    "dbm_to_mw",
    "mw_to_dbm",
    "db_to_ratio",
    "ratio_to_db",
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "ns_to_s",
    "s_to_ns",
    "HOTPATH_ENV",
    "hotpath_enabled",
    "hotpath_forced",
    "set_hotpath",
    "RngStreams",
    "EmpiricalCdf",
    "jain_fairness",
    "mean_gain",
    "summarize",
    "Point",
    "distance",
]
