"""The ``REPRO_HOTPATH`` knob: cached hot-path math vs. full re-derivation.

The frame hot path caches values that are pure functions of inputs that
rarely change — linear-domain (mW) mean received powers per (tx, rx)
pair, per-rate sensitivity/SIR constants, per-(rate, size) frame
airtimes.  The discipline is *cache, never re-derive*: every cached
value is produced by exactly the same expression the uncached path
evaluates, so enabling the caches is bit-identical to recomputing from
scratch.  ``REPRO_HOTPATH=off`` (or ``0``/``false``) force-disables all
of them, giving a slow reference path used by the equivalence tests in
``tests/test_hotpath_equivalence.py`` and as the baseline of
``benchmarks/bench_engine_throughput.py``'s hot-path bench.

The flag is read from the environment once (consumers sit on per-frame
paths where an ``os.environ`` lookup per call would itself be a cost)
and can be overridden programmatically with :func:`set_hotpath` —
``None`` restores deference to the environment.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

#: Environment knob: ``off``/``0``/``false`` disables hot-path caching.
HOTPATH_ENV = "REPRO_HOTPATH"

#: Values (lower-cased) that disable the hot path.
_DISABLED_VALUES = ("off", "0", "false", "no")

_enabled: Optional[bool] = None


def _from_env() -> bool:
    raw = os.environ.get(HOTPATH_ENV, "").strip().lower()
    return raw not in _DISABLED_VALUES if raw else True


def hotpath_enabled() -> bool:
    """True when hot-path caches are active (the default)."""
    global _enabled
    if _enabled is None:
        _enabled = _from_env()
    return _enabled


def set_hotpath(enabled: Optional[bool]) -> None:
    """Override the knob programmatically.

    ``True``/``False`` pin the state; ``None`` re-reads the environment
    on the next :func:`hotpath_enabled` call.  Objects that sample the
    flag at construction time (``Channel``, ``Radio``) must be rebuilt
    to observe a change — the benches and equivalence tests construct
    one network per mode for exactly this reason.
    """
    global _enabled
    _enabled = enabled


@contextmanager
def hotpath_forced(enabled: bool) -> Iterator[None]:
    """Pin the knob inside a block, restoring the prior state after."""
    global _enabled
    previous = _enabled
    _enabled = enabled
    try:
        yield
    finally:
        _enabled = previous
