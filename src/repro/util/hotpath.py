"""Execution-mode knobs: a small registry of env-gated feature toggles.

The simulator has three performance modes, all read from the environment
once and all overridable programmatically:

``hotpath`` (``REPRO_HOTPATH``, default **on**)
    Cached hot-path math vs. full re-derivation.  The frame hot path
    caches values that are pure functions of inputs that rarely change —
    linear-domain (mW) mean received powers per (tx, rx) pair, per-rate
    sensitivity/SIR constants, per-(rate, size) frame airtimes.  The
    discipline is *cache, never re-derive*: every cached value is
    produced by exactly the same expression the uncached path evaluates,
    so enabling the caches is bit-identical to recomputing from scratch.
    ``REPRO_HOTPATH=off`` (or ``0``/``false``/``no``) force-disables all
    of them, giving a slow reference path used by the equivalence tests
    in ``tests/test_hotpath_equivalence.py`` and as the baseline of
    ``benchmarks/bench_engine_throughput.py``'s hot-path bench.

``vector`` (``REPRO_VECTOR``, default **off**)
    The struct-of-arrays channel backend (:mod:`repro.phy.vector`): per
    transmitted frame, all candidate receivers are evaluated in one
    batched pass — dense mean-power rows, array-computed culling,
    bulk-composed per-link shadowing draws — instead of the
    per-receiver scalar loop.  Requires numpy (``pip install
    repro[vector]``); enabling it without numpy raises ``RuntimeError``
    at channel construction.  Equivalence against the scalar path is
    pinned by ``tests/test_vector_equivalence.py``.

``spatial`` (``REPRO_SPATIAL``, default **off**)
    Hash-grid candidate generation (:mod:`repro.phy.spatial`): per
    transmitted frame the channel queries a uniform grid over attached
    radios with a per-sender *reach radius* derived from the propagation
    model, visiting only the radios the below-floor cull could possibly
    keep instead of every attached radio.  Requires an active
    ``cull_margin_db`` (the reach radius is the cull boundary's
    geometric preimage); with culling off the knob is inert and the
    exhaustive loop runs unchanged.  Equivalence against the exhaustive
    path is pinned by ``tests/test_spatial_equivalence.py``.

All flags are read from the environment once (consumers sit on
per-frame paths where an ``os.environ`` lookup per call would itself be
a cost) and can be overridden programmatically — ``None`` restores
deference to the environment.  Objects that sample a flag at
construction time (``Channel``, ``Radio``) must be rebuilt to observe a
change; the benches and equivalence tests construct one network per
mode for exactly this reason.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

#: Environment knob: ``off``/``0``/``false``/``no`` disables hot-path caching.
HOTPATH_ENV = "REPRO_HOTPATH"

#: Environment knob: any other non-empty value (``1``/``on``/...) enables
#: the vectorized channel backend.
VECTOR_ENV = "REPRO_VECTOR"

#: Environment knob: enables hash-grid spatial candidate generation.
SPATIAL_ENV = "REPRO_SPATIAL"

#: Values (lower-cased) that read as "disabled" for any mode knob.
_DISABLED_VALUES = ("off", "0", "false", "no")


@dataclass
class _Mode:
    """One env-gated execution-mode flag.

    ``cached`` holds the resolved state (``None`` = not yet read);
    ``override`` pins the state programmatically (``None`` = defer to
    the environment).
    """

    env: str
    default: bool
    override: Optional[bool] = None
    cached: Optional[bool] = field(default=None, repr=False)

    def enabled(self) -> bool:
        if self.override is not None:
            return self.override
        if self.cached is None:
            raw = os.environ.get(self.env, "").strip().lower()
            if not raw:
                self.cached = self.default
            else:
                self.cached = raw not in _DISABLED_VALUES
        return self.cached

    def set(self, enabled: Optional[bool]) -> None:
        self.override = enabled
        if enabled is None:
            self.cached = None  # re-read the environment on next query


#: The registry.  New modes register here; consumers address them by name.
_MODES: Dict[str, _Mode] = {
    "hotpath": _Mode(env=HOTPATH_ENV, default=True),
    "vector": _Mode(env=VECTOR_ENV, default=False),
    "spatial": _Mode(env=SPATIAL_ENV, default=False),
}


def mode_enabled(name: str) -> bool:
    """True when the named mode is active (override > env > default)."""
    return _MODES[name].enabled()


def set_mode(name: str, enabled: Optional[bool]) -> None:
    """Override a mode programmatically.

    ``True``/``False`` pin the state; ``None`` re-reads the environment
    on the next :func:`mode_enabled` call.
    """
    _MODES[name].set(enabled)


@contextmanager
def mode_forced(name: str, enabled: bool) -> Iterator[None]:
    """Pin a mode inside a block, restoring the prior override after."""
    mode = _MODES[name]
    previous = mode.override
    mode.set(enabled)
    try:
        yield
    finally:
        mode.set(previous)


# ----------------------------------------------------------------------
# Named accessors (the stable public API)
# ----------------------------------------------------------------------
def hotpath_enabled() -> bool:
    """True when hot-path caches are active (the default)."""
    return mode_enabled("hotpath")


def set_hotpath(enabled: Optional[bool]) -> None:
    """Override the hot-path knob; ``None`` defers to the environment."""
    set_mode("hotpath", enabled)


def hotpath_forced(enabled: bool):
    """Pin the hot-path knob inside a block, restoring after."""
    return mode_forced("hotpath", enabled)


def vector_enabled() -> bool:
    """True when the vectorized channel backend is active (default off)."""
    return mode_enabled("vector")


def set_vector(enabled: Optional[bool]) -> None:
    """Override the vector knob; ``None`` defers to the environment."""
    set_mode("vector", enabled)


def vector_forced(enabled: bool):
    """Pin the vector knob inside a block, restoring after."""
    return mode_forced("vector", enabled)


def spatial_enabled() -> bool:
    """True when hash-grid candidate generation is active (default off)."""
    return mode_enabled("spatial")


def set_spatial(enabled: Optional[bool]) -> None:
    """Override the spatial knob; ``None`` defers to the environment."""
    set_mode("spatial", enabled)


def spatial_forced(enabled: bool):
    """Pin the spatial knob inside a block, restoring after."""
    return mode_forced("spatial", enabled)
