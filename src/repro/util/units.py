"""Unit conversions used throughout the simulator.

Power is handled in two representations:

* **dBm** — the logarithmic form used by every 802.11 parameter in the
  paper (transmit power, carrier-sense threshold ``T_cs``, noise floor).
* **milliwatts (mW)** — the linear form required whenever powers add,
  e.g. when a radio sums the energy of concurrent transmissions for
  clear-channel assessment or computes an SIR denominator.

Time inside the discrete-event engine is **integer nanoseconds** so that
event ordering is exact and runs are bit-reproducible; the constants below
make MAC-layer timing declarations readable (``10 * MICROSECOND``).
"""

from __future__ import annotations

import math

#: One microsecond expressed in engine ticks (nanoseconds).
MICROSECOND: int = 1_000
#: One millisecond expressed in engine ticks (nanoseconds).
MILLISECOND: int = 1_000_000
#: One second expressed in engine ticks (nanoseconds).
SECOND: int = 1_000_000_000


def dbm_to_mw(dbm: float) -> float:
    """Convert a power level from dBm to milliwatts.

    >>> dbm_to_mw(0.0)
    1.0
    >>> dbm_to_mw(20.0)
    100.00000000000001
    """
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    """Convert a power level from milliwatts to dBm.

    Raises :class:`ValueError` for non-positive power, which has no
    logarithmic representation (use ``-inf`` handling at the call site if
    a silent floor is desired).
    """
    if mw <= 0.0:
        raise ValueError(f"power must be positive to convert to dBm, got {mw}")
    return 10.0 * math.log10(mw)


def db_to_ratio(db: float) -> float:
    """Convert a relative level in dB to a linear power ratio."""
    return 10.0 ** (db / 10.0)


def ratio_to_db(ratio: float) -> float:
    """Convert a linear power ratio to dB."""
    if ratio <= 0.0:
        raise ValueError(f"ratio must be positive to convert to dB, got {ratio}")
    return 10.0 * math.log10(ratio)


def ns_to_s(ns: int) -> float:
    """Convert engine ticks (nanoseconds) to seconds."""
    return ns / SECOND


def s_to_ns(seconds: float) -> int:
    """Convert seconds to engine ticks (nanoseconds), rounding to nearest."""
    return int(round(seconds * SECOND))
