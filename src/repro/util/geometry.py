"""Planar geometry primitives for node placement.

The paper works with 2-D coordinates (a neighbor table stores ``X``/``Y``
per node, Fig. 3).  All distances are in meters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Point:
    """An immutable 2-D position in meters."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in meters."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translate(self, dx: float, dy: float) -> "Point":
        """Return a new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def __iter__(self):
        yield self.x
        yield self.y


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points in meters."""
    return a.distance_to(b)
